"""Event-driven LogP machine simulator.

Two entry points:

* :func:`replay` — re-execute an explicit :class:`Schedule`, verifying all
  LogP constraints and returning the execution :class:`Trace`.  This is the
  oracle against which every constructive algorithm in the library is
  checked.
* :class:`Machine` — run *reactive programs* (one per processor) under
  earliest-available semantics.  Programs queue send intents; the engine
  assigns actual cycle-accurate start times.  A send departs only when the
  LogP model permits it end to end: the sender's gap and overhead, the
  *receiver's* gap and overhead at the implied arrival slot (slots are
  reserved at send time, like a circuit-switched admission check), and
  thus also the network capacity.  The realized :class:`Schedule` therefore
  always replays cleanly on the strict validator.

The engine is event-driven: instead of scanning all ``P`` processors every
cycle, it keeps heaps of pending callbacks, reserved receptions and
send-admission attempts, and jumps straight to the next cycle where any of
them is due.  A blocked send is re-attempted at the earliest cycle its
blocking constraint can clear (gap: ``last + g``; overhead: ``r + o``;
receive-slot conflict: ``r + g - o - L``) — each bound is exact, so the
realized schedule is identical, send for send, to the historical per-cycle
scan (kept as a reference engine for property tests).  If the simulation
goes quiescent while some processor still queues a send whose item it
never receives, the engine fails fast with a deadlock diagnostic instead
of spinning through ``max_cycles``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right, insort
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Protocol

from repro.params import LogPParams
from repro.schedule.ops import Schedule, SendOp
from repro.sim.trace import Trace, trace_from_schedule
from repro.sim.validate import assert_valid

__all__ = [
    "replay",
    "Machine",
    "Program",
    "Context",
    "format_rank_set",
    "format_blocked",
]

Item = Hashable

# Detail lines shown per blocked rank before truncating; the summary
# line always covers the full set.
_MAX_BLOCKED_LINES = 8


def format_rank_set(ranks: list[int]) -> str:
    """Collapse a sorted rank list into run notation: ``0-3,7,9-10``."""
    runs: list[str] = []
    i = 0
    while i < len(ranks):
        j = i
        while j + 1 < len(ranks) and ranks[j + 1] == ranks[j] + 1:
            j += 1
        runs.append(str(ranks[i]) if i == j else f"{ranks[i]}-{ranks[j]}")
        i = j + 1
    return ",".join(runs)


def format_blocked(
    headline: str,
    waiters: list[tuple[int, str]],
    *,
    total_ranks: int,
) -> str:
    """Shared diagnostic body for simulator deadlocks and executor
    timeouts: ``headline`` plus a blocked-rank summary (set collapsed
    to run notation, usable at large ``P``) and per-rank detail lines,
    truncated after ``_MAX_BLOCKED_LINES``.

    ``waiters`` is ``(rank, one-line description)`` in the order the
    details should print; the first entry is the "earliest" one the
    headline typically names.
    """
    ranks = sorted({rank for rank, _ in waiters})
    lines = [detail for _, detail in waiters[:_MAX_BLOCKED_LINES]]
    hidden = len(waiters) - len(lines)
    if hidden > 0:
        lines.append(f"... and {hidden} more blocked rank(s)")
    return (
        f"{headline}: {len(ranks)} of {total_ranks} ranks blocked "
        f"(ranks {format_rank_set(ranks)})\n  " + "\n  ".join(lines)
    )


def replay(schedule: Schedule, check_capacity: bool = True) -> Trace:
    """Validate ``schedule`` against the LogP model and return its trace.

    Raises ``ValueError`` (with every violation listed) if the schedule is
    not a legal execution.
    """
    assert_valid(schedule, check_capacity=check_capacity)
    return trace_from_schedule(schedule)


class Context:
    """Handle given to program callbacks for interacting with the machine."""

    def __init__(self, machine: "Machine", proc: int, time: int):
        self._machine = machine
        self.proc = proc
        self.time = time

    def send(self, dst: int, item: Item) -> None:
        """Queue a message; it departs as soon as the LogP model permits."""
        self._machine._enqueue_send(self.proc, dst, item)

    def has(self, item: Item) -> bool:
        return item in self._machine._states[self.proc].held

    def held_items(self) -> frozenset[Item]:
        return frozenset(self._machine._states[self.proc].held)

    @property
    def params(self) -> LogPParams:
        return self._machine.params


class Program(Protocol):
    """Per-processor reactive behaviour.

    ``on_start`` fires at cycle 0; ``on_receive`` fires at the cycle the
    item becomes available (end of the receive overhead).
    """

    def on_start(self, ctx: Context) -> None: ...

    def on_receive(self, ctx: Context, item: Item, src: int) -> None: ...


@dataclass
class _ProcState:
    held: set[Item] = field(default_factory=set)
    outbox: deque = field(default_factory=deque)  # (dst, item)
    last_send_start: int | None = None
    recv_slots: list[int] = field(default_factory=list)  # sorted booked starts


class Machine:
    """Earliest-available event-driven execution of reactive programs.

    A processor attempts to start at most one send per cycle (head of its
    FIFO outbox).  A send at cycle ``t`` is admitted only if

    * the item is held and the last send started >= ``g`` cycles ago,
    * (``o > 0``) the sender's overhead ``[t, t+o)`` does not overlap any
      of its reserved incoming receive overheads,
    * the receive slot ``t + o + L`` at the destination is >= ``g`` away
      from every already-reserved slot there.

    Receptions happen exactly at their reserved slots, so the realized
    schedule satisfies the strict LogP validator by construction.
    """

    def __init__(
        self,
        params: LogPParams,
        programs: dict[int, Program],
        initial: dict[int, set[Item]] | None = None,
        max_cycles: int = 1_000_000,
    ):
        self.params = params
        self.programs = programs
        self.max_cycles = max_cycles
        self._states: dict[int, _ProcState] = {
            p: _ProcState() for p in range(params.P)
        }
        init = initial if initial is not None else {0: {0}}
        for proc, items in init.items():
            self._states[proc].held |= set(items)
        self._initial = {p: set(s.held) for p, s in self._states.items() if s.held}
        self._sends: list[SendOp] = []
        self._seq = 0
        self._now = 0
        # pending callbacks: heap of (fire_time, seq, kind, proc, payload)
        self._pending: list[tuple[int, int, str, int, tuple]] = []
        # reserved receptions: heap of (slot, proc, src, item); slots at one
        # processor are >= g >= 1 apart, so (slot, proc) never ties
        self._recv_events: list[tuple[int, int, int, Item]] = []
        # send-admission retries: heap of (cycle, proc) + dedupe map
        self._attempts: list[tuple[int, int]] = []
        self._attempt_at: dict[int, int] = {}

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _enqueue_send(self, src: int, dst: int, item: Item) -> None:
        if dst == src:
            raise ValueError(f"proc {src} cannot send to itself")
        if not (0 <= dst < self.params.P):
            raise ValueError(f"destination {dst} out of range")
        self._states[src].outbox.append((dst, item))
        self._schedule_attempt(src, self._now)

    def _schedule_attempt(self, proc: int, t: int) -> None:
        current = self._attempt_at.get(proc)
        if current is not None and current <= t:
            return
        self._attempt_at[proc] = t
        heapq.heappush(self._attempts, (t, proc))

    def _send_admissible(self, proc: int, t: int) -> bool:
        params = self.params
        state = self._states[proc]
        if not state.outbox:
            return False
        dst, item = state.outbox[0]
        if item not in state.held:
            return False
        if state.last_send_start is not None and t - state.last_send_start < params.g:
            return False
        if params.o > 0:
            # the sender's overhead [t, t+o) must not overlap any reserved
            # incoming receive overhead [r, r+o): no slot in (t-o, t+o)
            if self._max_slot_in(state.recv_slots, t, params.o) is not None:
                return False
        slot = t + params.o + params.L
        if self._max_slot_in(
            self._states[dst].recv_slots, slot, params.g
        ) is not None:
            return False
        return True

    @staticmethod
    def _max_slot_in(slots: list[int], center: int, radius: int) -> int | None:
        """Largest reserved slot ``r`` with ``|r - center| < radius``."""
        hi = bisect_left(slots, center + radius)
        if hi > 0 and slots[hi - 1] > center - radius:
            return slots[hi - 1]
        return None

    def _retry_time(self, proc: int, t: int) -> int | None:
        """Earliest cycle > ``t`` at which the blocked head send could clear.

        Returns ``None`` when the head item is not held (the processor is
        woken by the reception instead) or the outbox is empty.  Every
        bound is exact — the constraint provably still blocks at every
        cycle before it — so retrying there preserves the cycle-accurate
        admission order of the per-cycle reference engine.
        """
        params = self.params
        state = self._states[proc]
        if not state.outbox:
            return None
        dst, item = state.outbox[0]
        if item not in state.held:
            return None
        t2 = t
        if state.last_send_start is not None:
            t2 = max(t2, state.last_send_start + params.g)
        if params.o > 0:
            r = self._max_slot_in(state.recv_slots, t, params.o)
            if r is not None:
                t2 = max(t2, r + params.o)
        slot = t + params.o + params.L
        r = self._max_slot_in(self._states[dst].recv_slots, slot, params.g)
        if r is not None:
            t2 = max(t2, r + params.g - params.o - params.L)
        return t2 if t2 > t else t + 1

    def _execute_send(self, proc: int, t: int) -> None:
        state = self._states[proc]
        dst, item = state.outbox.popleft()
        state.last_send_start = t
        self._sends.append(SendOp(time=t, src=proc, dst=dst, item=item))
        slot = t + self.params.o + self.params.L
        insort(self._states[dst].recv_slots, slot)
        heapq.heappush(self._recv_events, (slot, dst, proc, item))

    def _drain_callbacks(self, t: int) -> None:
        while self._pending and self._pending[0][0] <= t:
            fire_time, _seq, kind, proc, payload = heapq.heappop(self._pending)
            prog = self.programs.get(proc)
            if prog is None:
                continue
            ctx = Context(self, proc, max(fire_time, t))
            if kind == "start":
                prog.on_start(ctx)
            else:
                item, src = payload
                prog.on_receive(ctx, item, src)

    def _deliver_receptions(self, t: int) -> None:
        o = self.params.o
        while self._recv_events and self._recv_events[0][0] <= t:
            slot, proc, src, item = heapq.heappop(self._recv_events)
            assert slot == t, "reserved slot must fire on time"
            self._states[proc].held.add(item)
            heapq.heappush(
                self._pending, (t + o, self._next_seq(), "recv", proc, (item, src))
            )
            self._schedule_attempt(proc, t)

    def _push_starts(self) -> None:
        for proc in sorted(self.programs):
            heapq.heappush(self._pending, (0, self._next_seq(), "start", proc, ()))
        for proc, state in self._states.items():
            if state.outbox:
                self._schedule_attempt(proc, 0)

    def _finish(self) -> Schedule:
        return Schedule(
            params=self.params, sends=sorted(self._sends), initial=self._initial
        )

    def _raise_deadlock(self) -> None:
        stuck = sorted(
            (proc, state.outbox[0])
            for proc, state in self._states.items()
            if state.outbox
        )
        first_proc, (first_dst, first_item) = stuck[0]
        waiters = [
            (
                proc,
                f"proc {proc} waits to send item {item!r} to proc {dst} "
                f"but never receives the item",
            )
            for proc, (dst, item) in stuck
        ]
        raise RuntimeError(
            format_blocked(
                f"deadlock: simulation is quiescent with undeliverable "
                f"sends; earliest: proc {first_proc} -> proc {first_dst}, "
                f"item {first_item!r}",
                waiters,
                total_ranks=self.params.P,
            )
        )

    def run(self) -> Schedule:
        """Run all programs to quiescence and return the realized schedule.

        Raises ``RuntimeError`` on deadlock (a queued send whose item never
        arrives) or when the next event lies beyond ``max_cycles``.
        """
        self._push_starts()
        while True:
            candidates = [
                heap[0][0]
                for heap in (self._pending, self._recv_events, self._attempts)
                if heap
            ]
            if not candidates:
                if any(state.outbox for state in self._states.values()):
                    self._raise_deadlock()
                break
            t = min(candidates)
            if t > self.max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {self.max_cycles} cycles"
                )
            self._now = t
            self._drain_callbacks(t)
            self._deliver_receptions(t)
            # with o == 0 the payload is usable this very cycle, and the
            # postal model is full duplex: fire handlers before the send
            # phase so a just-informed processor can relay immediately
            if self.params.o == 0:
                self._drain_callbacks(t)
            # send attempts due now, in ascending processor order — a send
            # reserves a receive slot that may block a higher-numbered
            # processor in this same cycle, exactly as the per-cycle scan
            while self._attempts and self._attempts[0][0] <= t:
                at, proc = heapq.heappop(self._attempts)
                if self._attempt_at.get(proc) != at:
                    continue  # superseded by an earlier reschedule
                del self._attempt_at[proc]
                if self._send_admissible(proc, t):
                    self._execute_send(proc, t)
                    if self._states[proc].outbox:
                        self._schedule_attempt(proc, t + self.params.g)
                else:
                    retry = self._retry_time(proc, t)
                    if retry is not None:
                        self._schedule_attempt(proc, retry)
        return self._finish()

    def _run_cycle_stepped(self) -> Schedule:
        """Reference engine: the historical per-cycle scan over all ``P``
        processors.  Semantically identical to :meth:`run` (property-tested);
        kept only as the oracle for that comparison.
        """
        self._push_starts()
        t = 0
        while t <= self.max_cycles:
            self._now = t
            self._drain_callbacks(t)
            self._deliver_receptions(t)
            if self.params.o == 0:
                self._drain_callbacks(t)
            for proc in range(self.params.P):
                if self._send_admissible(proc, t):
                    self._execute_send(proc, t)
            if not self._pending and not self._recv_events and not any(
                s.outbox for s in self._states.values()
            ):
                break
            t += 1
        else:
            raise RuntimeError(f"simulation exceeded {self.max_cycles} cycles")
        return self._finish()

    def held(self, proc: int) -> frozenset[Item]:
        return frozenset(self._states[proc].held)
