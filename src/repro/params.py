"""LogP machine parameters.

The LogP model (Culler et al., PPoPP 1993) describes a distributed-memory
machine by four parameters:

``P``
    the number of processor/memory pairs,
``L``
    the *latency*: an upper bound on the delay incurred by a message
    travelling through the network,
``o``
    the *overhead*: the time a processor is busy while injecting or
    extracting a single message,
``g``
    the *gap*: the minimum spacing between two consecutive sends (or two
    consecutive receives) at the same processor.

Times are integer processor cycles throughout this library.  Following the
paper, execution is assumed synchronous and every message incurs the full
latency ``L``: a message whose transmission *starts* at cycle ``s`` occupies
the sender for cycles ``[s, s+o)``, arrives and occupies the receiver for
cycles ``[s+o+L, s+o+L+o)``, and the payload is available to the receiver at
cycle ``s + L + 2*o``.

The *postal model* of Bar-Noy and Kipnis is the special case ``o = 0``,
``g = 1``: a message sent at integer time ``s`` is available at ``s + L``,
and a processor may send at most one message and receive at most one message
per unit step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LogPParams", "postal"]


@dataclass(frozen=True, slots=True)
class LogPParams:
    """An immutable bundle of the four LogP parameters.

    Parameters
    ----------
    P:
        Number of processors; must be >= 1.
    L:
        Network latency in cycles; must be >= 1.
    o:
        Per-message send/receive overhead in cycles; must be >= 0.
    g:
        Minimum gap between consecutive sends (and between consecutive
        receives) at one processor; must be >= 1.

    Examples
    --------
    >>> m = LogPParams(P=8, L=6, o=2, g=4)
    >>> m.send_cost
    10
    >>> postal(P=10, L=3)
    LogPParams(P=10, L=3, o=0, g=1)
    """

    P: int
    L: int
    o: int = 0
    g: int = 1

    def __post_init__(self) -> None:
        for name in ("P", "L", "o", "g"):
            value = getattr(self, name)
            if not isinstance(value, int):
                raise TypeError(f"{name} must be an int, got {type(value).__name__}")
        if self.P < 1:
            raise ValueError(f"P must be >= 1, got {self.P}")
        if self.L < 1:
            raise ValueError(f"L must be >= 1, got {self.L}")
        if self.o < 0:
            raise ValueError(f"o must be >= 0, got {self.o}")
        if self.g < 1:
            raise ValueError(f"g must be >= 1, got {self.g}")
        if self.o > self.g:
            # the paper's universal-tree construction (children at
            # d + i*g + L + 2o) paces sends by g alone, which is only
            # meaningful when a send's overhead fits inside the gap; the
            # LogP literature commonly assumes g >= o for the same reason
            raise ValueError(
                f"o must be <= g (got o={self.o}, g={self.g}); "
                f"overhead-dominated machines are outside the paper's model"
            )

    @property
    def send_cost(self) -> int:
        """End-to-end cost ``L + 2o`` of one message between idle processors."""
        return self.L + 2 * self.o

    @property
    def capacity(self) -> int:
        """Network capacity ``ceil(L / g)``: the maximum number of messages
        that may simultaneously be in transit from (or to) one processor."""
        return math.ceil(self.L / self.g)

    @property
    def is_postal(self) -> bool:
        """True when the parameters reduce to the postal model (``o=0, g=1``)."""
        return self.o == 0 and self.g == 1

    def to_postal(self) -> "LogPParams":
        """Fold the overhead into the latency and normalize the gap.

        The paper notes that for communication-only problems the overhead can
        be absorbed into the latency (``L' = L + 2o``) and the gap normalized
        to 1, yielding an equivalent postal-model machine.  Only valid when
        ``g`` already equals 1 or when all events are spaced at multiples of
        ``g`` (callers are expected to rescale time themselves otherwise).
        """
        return LogPParams(P=self.P, L=self.L + 2 * self.o, o=0, g=1)

    def with_processors(self, P: int) -> "LogPParams":
        """Return a copy of these parameters with a different processor count."""
        return LogPParams(P=P, L=self.L, o=self.o, g=self.g)


def postal(P: int, L: int) -> LogPParams:
    """Construct postal-model parameters (``o = 0``, ``g = 1``).

    The postal model of Bar-Noy and Kipnis is the sub-model in which the
    paper analyses k-item and continuous broadcast.
    """
    return LogPParams(P=P, L=L, o=0, g=1)
