"""Stdlib HTTP front end for the plan service.

Endpoints (JSON in, JSON out)::

    POST /plan        {"collective": "bcast", "P": 8, "L": 6, ...}
                   -> {"key": ..., "content_hash": ..., "plan": {...}}
    POST /plan_many   {"requests": [{...}, {...}]}
                   -> {"count": N, "plans": [{...}, ...]}
    GET  /stats    -> the service's counters (cache tiers + core caches)

Built on ``http.server.ThreadingHTTPServer`` — no dependencies beyond
the standard library, threads instead of an event loop because the hot
path is a dict lookup and the cold path releases the GIL into numpy.
Malformed input answers 400 with a one-line ``{"error": ...}``; unknown
paths answer 404.  Start one with :func:`serve_http` (pass ``port=0``
for an ephemeral test port) or ``python -m repro.cli serve``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, cast

from repro.serve.keys import content_hash, request_from_mapping, request_key
from repro.serve.service import PlanService

__all__ = ["PlanRequestHandler", "PlanServer", "serve_http"]

#: Refuse request bodies beyond this size before reading them: the
#: largest legitimate ``plan_many`` batches are a few thousand requests
#: of ~100 bytes each.
MAX_BODY_BYTES = 8 * 2**20


class PlanRequestHandler(BaseHTTPRequestHandler):
    """Routes the three endpoints onto the server's ``PlanService``."""

    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def plan_server(self) -> "PlanServer":
        # self.server is typed as the socketserver base; this handler is
        # only ever constructed by a PlanServer
        return cast("PlanServer", self.server)

    def log_message(self, format: str, *args: Any) -> None:
        if self.plan_server.verbose:
            super().log_message(format, *args)

    def _reply(self, status: int, doc: dict[str, Any] | str) -> None:
        body = doc.encode() if isinstance(doc, str) else json.dumps(doc).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _read_body(self) -> dict[str, Any] | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "malformed Content-Length")
            return None
        if length <= 0:
            self._error(400, "request body required")
            return None
        if length > MAX_BODY_BYTES:
            self._error(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
            return None
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            self._error(400, f"malformed JSON body: {exc}")
            return None
        if not isinstance(doc, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return doc

    # -- endpoints ---------------------------------------------------------

    def do_GET(self) -> None:
        if self.path != "/stats":
            self._error(404, f"unknown path {self.path!r} (try /stats)")
            return
        self._reply(200, self.plan_server.service.stats())

    def do_POST(self) -> None:
        if self.path not in ("/plan", "/plan_many"):
            self._error(
                404, f"unknown path {self.path!r} (try /plan or /plan_many)"
            )
            return
        doc = self._read_body()
        if doc is None:
            return
        service = self.plan_server.service
        try:
            if self.path == "/plan":
                req = request_from_mapping(doc)
                content = service.plan_json(req)
                self._reply(
                    200,
                    {
                        "key": request_key(req),
                        "content_hash": content_hash(content),
                        "plan": json.loads(content),
                    },
                )
            else:
                batch = doc.get("requests")
                if not isinstance(batch, list):
                    self._error(400, "plan_many body needs a 'requests' list")
                    return
                plans = service.plan_many_json(batch)
                self._reply(
                    200,
                    {
                        "count": len(plans),
                        "plans": [json.loads(p) for p in plans],
                    },
                )
        except ValueError as exc:
            self._error(400, str(exc))


class PlanServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` carrying its :class:`PlanService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: PlanService,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__(address, PlanRequestHandler)


def serve_http(
    host: str = "127.0.0.1",
    port: int = 8040,
    service: PlanService | None = None,
    verbose: bool = False,
) -> PlanServer:
    """Bind a plan server (not yet serving — call ``serve_forever``).

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``), which is how the tests and the CI smoke
    run without port collisions.
    """
    return PlanServer(
        (host, port), service if service is not None else PlanService(),
        verbose=verbose,
    )
