"""Star-tree k-item broadcast for the large-latency regime.

When ``P - 2 <= B(P-1)`` (large ``L`` relative to ``P``), the per-item
tree can simply be a *star*: the item's root relays it directly to every
other processor on consecutive steps.  The star's completion
``L + P - 3`` then fits within Theorem 3.6's slack
``B(P-1) + L - 1``, and — unlike deep trees — its word-assignment
problem has a *closed-form* solution via complete mappings of ``Z_n``:

With ``n = P - 2`` (the root block's size), phase ``j`` of the cyclic
pattern must carry a distinct leaf offset ``x(j) ∈ {0..n-1}`` such that

* ``j + x(j)`` are pairwise distinct mod ``n``  (the correctness rule for
  offsets below ``n``), and
* ``x(j) != (L - 1 - j) mod n``                 (no collision with the
  uppercase duty at phase 0).

For odd ``n`` the affine map ``x(j) = (j + L - 1) mod n`` satisfies both
(the one violating phase is 0, which holds the uppercase anyway) —
Hall-Paige in action: ``j -> 2j`` is a bijection iff ``n`` is odd.  For
even ``n`` no affine map works (indeed no *complete* mapping of ``Z_n``
exists), but we only need ``n - 1`` of the ``n`` letters, and a small
backtracking search finds a near-complete mapping quickly.
"""

from __future__ import annotations

from repro.core.continuous.schedule import GBlock, GeneralAssignment
from repro.core.fib import broadcast_time_postal
from repro.core.tree import BroadcastTree, TreeNode
from repro.params import postal

__all__ = ["star_tree", "star_assignment", "star_fits"]


def star_tree(P_minus_1: int, L: int) -> BroadcastTree:
    """The star: a root with ``P - 2`` leaf children at ``L .. L+P-3``."""
    if P_minus_1 < 2:
        raise ValueError("a star needs at least 2 processors")
    nodes = [TreeNode(index=0, delay=0, parent=None)]
    for j in range(P_minus_1 - 1):
        nodes.append(TreeNode(index=j + 1, delay=L + j, parent=0))
        nodes[0].children.append(j + 1)
    return BroadcastTree(postal(P=P_minus_1, L=L), nodes)


def star_fits(P: int, L: int) -> bool:
    """Does the star's completion fit Theorem 3.6's slack?

    ``L + P - 3 <= B(P-1) + L - 1``, i.e. ``P - 2 <= B(P-1)``.
    """
    if P < 3:
        return False
    return P - 2 <= broadcast_time_postal(P - 1, L)


def _near_complete_mapping(n: int, L: int) -> list[int] | None:
    """Find ``x(1..n-1)``: distinct letters with distinct sums mod ``n``
    avoiding the uppercase-collision diagonal ``x(j) = (L-1-j) mod n``."""
    if n == 1:
        return []
    if n % 2 == 1:
        # affine closed form; violating phase is 0 (the uppercase)
        return [(j + L - 1) % n for j in range(1, n)]
    # Even n: no complete mapping of Z_n exists (Hall-Paige), but a
    # size-(n-1) partial transversal of Z_n's Cayley table does, with an
    # explicit two-progression construction:
    #
    #   x0(j) = j - 1  for 1 <= j <= n/2     (odd sums 1, 3, ..., n-1)
    #   x0(j) = j      for n/2 < j <= n-1    (even sums 2, 4, ..., n-2)
    #
    # Columns cover Z_n minus n/2; sums cover Z_n minus 0.  The diagonal
    # constraint is then dodged by a cyclic shift ``x = x0 + c``: each
    # phase forbids exactly one value of ``c``, so with n-1 phases and n
    # shifts a clean ``c`` exists by pigeonhole.
    half = n // 2
    x0 = [0] * n
    for j in range(1, half + 1):
        x0[j] = j - 1
    for j in range(half + 1, n):
        x0[j] = j
    forbidden_shifts = {
        ((L - 1 - j) - x0[j]) % n for j in range(1, n)
    }
    shift = next(c for c in range(n) if c not in forbidden_shifts)
    return [(x0[j] + shift) % n for j in range(1, n)]


def star_assignment(P: int, L: int) -> GeneralAssignment | None:
    """Closed-form star-tree assignment for ``(P, L)``.

    Returns a validated assignment whose expansion broadcasts ``k`` items
    in ``L + (L + P - 3) + k - 1`` steps, or ``None`` when ``P < 3`` or
    the even-``n`` search fails (not observed for ``n <= 200``).
    """
    if P < 3:
        return None
    n = P - 2
    tree = star_tree(P - 1, L)
    T = tree.completion_time  # L + n - 1
    if n == 0:
        return None
    mapping = _near_complete_mapping(n, L)
    if mapping is None:
        return None
    if n == 1:
        word: tuple[int, ...] = ()
        dropped = 0  # the single leaf letter goes to the receive-only proc
    else:
        word = tuple(T - m for m in mapping)  # offsets -> leaf delays
        dropped = next(m for m in range(n) if m not in set(mapping))
    assignment = GeneralAssignment(
        tree=tree,
        L=L,
        blocks=[GBlock(upper_delay=0, size=n, word=word)] if n >= 1 else [],
        receive_only=(T - dropped,),
    )
    assignment.validate()
    from repro.core.continuous.words import is_legal_general_pattern

    entries = [(T - 0, n)] + [(T - d, 0) for d in word]
    if not is_legal_general_pattern(entries):
        raise AssertionError("star construction produced an illegal pattern")
    return assignment
