"""Tests for all-to-all broadcast and personalized communication (§4.1)."""

import pytest

from repro.core.all_to_all import (
    all_to_all_lower_bound,
    all_to_all_personalized_schedule,
    all_to_all_schedule,
    all_to_all_time,
    interleaving_gap,
    is_tight,
    k_item_all_to_all_lower_bound,
    k_item_all_to_all_schedule,
)
from repro.params import LogPParams, postal
from repro.schedule.analysis import availability, completion_time
from repro.sim.machine import replay


class TestLowerBounds:
    def test_formula(self):
        p = LogPParams(P=8, L=6, o=2, g=4)
        assert all_to_all_lower_bound(p) == 6 + 4 + 6 * 4  # L+2o+(P-2)g

    def test_k_item_formula(self):
        p = postal(P=5, L=3)
        assert k_item_all_to_all_lower_bound(p, 2) == 3 + (2 * 4 - 1)

    def test_degenerate(self):
        assert all_to_all_lower_bound(postal(P=1, L=3)) == 0


class TestOptimality:
    @pytest.mark.parametrize("params", [
        postal(P=2, L=1),
        postal(P=5, L=3),
        postal(P=9, L=2),
        LogPParams(P=6, L=3, o=1, g=5),
    ])
    def test_matches_lower_bound_when_tight(self, params):
        assert is_tight(params)
        s = all_to_all_schedule(params)
        replay(s)
        assert completion_time(s) == all_to_all_lower_bound(params)

    @pytest.mark.parametrize("params", [
        LogPParams(P=8, L=6, o=2, g=4),
        LogPParams(P=6, L=3, o=1, g=2),
    ])
    def test_non_interleaving_machines_pay_a_stretch(self, params):
        # the strict synchronous model forces spacing g' > g when send and
        # receive overheads cannot interleave at phase (o+L) mod g
        assert not is_tight(params)
        assert interleaving_gap(params) > params.g
        s = all_to_all_schedule(params)
        replay(s)  # still a legal execution
        assert completion_time(s) == all_to_all_time(params)
        assert all_to_all_time(params) >= all_to_all_lower_bound(params)

    def test_postal_always_tight(self):
        for P in (2, 4, 9):
            for L in (1, 2, 5):
                assert is_tight(postal(P=P, L=L))

    def test_everyone_gets_everything(self):
        params = postal(P=6, L=2)
        s = all_to_all_schedule(params)
        av = availability(s)
        for p in range(6):
            for src in range(6):
                assert (p, ("a2a", src)) in av

    def test_personalized_same_time(self):
        params = LogPParams(P=7, L=4, o=1, g=2)
        s = all_to_all_personalized_schedule(params)
        replay(s)
        assert completion_time(s) == all_to_all_lower_bound(params)
        # each processor receives exactly its own personalized items
        av = availability(s)
        for dst in range(7):
            for src in range(7):
                if src != dst:
                    assert (dst, ("p2p", src, dst)) in av

    def test_k_item_matches_bound(self):
        params = postal(P=4, L=2)
        s = k_item_all_to_all_schedule(params, 3)
        replay(s)
        assert completion_time(s) == k_item_all_to_all_lower_bound(params, 3)


class TestCustomOrders:
    def test_valid_custom_permutations(self):
        params = postal(P=4, L=2)
        # shift by 2 instead of 1 each round: still collision-free
        orders = [[(i + d) % 4 for d in (2, 1, 3)] for i in range(4)]
        s = all_to_all_schedule(params, orders=orders)
        replay(s)
        assert completion_time(s) == all_to_all_lower_bound(params)

    def test_colliding_orders_rejected(self):
        params = postal(P=3, L=2)
        orders = [[1, 2], [2, 1], [1, 2]]
        # round 0 targets: 1, 2, 1 -> proc 1 hit twice
        with pytest.raises(ValueError):
            all_to_all_schedule(params, orders=orders)

    def test_non_permutation_rejected(self):
        params = postal(P=3, L=2)
        with pytest.raises(ValueError):
            all_to_all_schedule(params, orders=[[1, 1], [0, 2], [0, 1]])

    def test_wrong_count_rejected(self):
        params = postal(P=3, L=2)
        with pytest.raises(ValueError):
            all_to_all_schedule(params, orders=[[1, 2]])
