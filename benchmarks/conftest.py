"""Benchmark-suite configuration.

Each benchmark module regenerates one of the paper's figures (or a
theorem-validation sweep), asserts the paper's claims about it, and
times the regeneration with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only
"""
