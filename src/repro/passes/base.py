"""Pass framework core: the :class:`SchedulePass` contract + registry.

A *pass* is a schedule-to-schedule rewrite with declared invariants,
mirroring the MLIR/xdsl shape: a class with a canonical ``name``, typed
constructor parameters, and a ``run(Schedule) -> Schedule`` method that
returns a **new** schedule (the input is never mutated).  Passes are
registered by name in a registry mirroring :mod:`repro.registry`, which
is what makes the textual pipeline syntax
(:func:`repro.passes.pipeline.parse_pipeline`) and the CLI ``repro opt
--pipeline ...`` possible.

Declared invariants (checked by :class:`repro.passes.manager.PassManager`
when verification is on):

``preserves_legality``
    The output replays legally whenever the input does.  Every built-in
    pass preserves legality; the flag exists so the manager knows whether
    newly *introduced* lint errors are the pass's fault.

``preserves_completion``
    The output's completion time **relative to its start time** (the
    makespan) equals the input's.  Measured relative so that pure time
    translation (``shift``) preserves it; passes that genuinely change
    the critical path (``concat``, ``restrict``, ``prune-dead-sends``,
    ``compact-time``) declare ``False``.

Backends: every pass dispatches between a vectorized columnar kernel
(:mod:`repro.passes.kernels`) and the pure-Python objects oracle kept in
:mod:`repro.schedule.transform`.  The decision is owned by
:mod:`repro.dispatch`; ``backend=`` on the pass constructor overrides it
per instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, ClassVar, TypeVar

from repro import dispatch as _dispatch
from repro.schedule.ops import Schedule

if TYPE_CHECKING:  # implicit IR is optional at runtime for this module
    from repro.schedule.implicit import ImplicitSchedule

__all__ = [
    "SchedulePass",
    "PassSpec",
    "refuse_implicit",
    "register_pass",
    "get_pass_cls",
    "get_pass_spec",
    "pass_names",
    "pass_specs",
    "make_pass",
]


class SchedulePass:
    """One verified schedule rewrite (see module docstring).

    Subclasses set the class attributes, accept their parameters in
    ``__init__`` (keyword-friendly, so :func:`make_pass` can build them
    from parsed pipeline text), and implement :meth:`run`.  ``run`` may
    populate :attr:`stats` with pass-specific counters (e.g. reclaimed
    cycles); the manager snapshots it into the pass record.
    """

    #: Canonical registry name (kebab-case, e.g. ``"prune-dead-sends"``).
    name: ClassVar[str] = ""
    #: One-line human summary (rendered by ``repro opt --list-passes``).
    summary: ClassVar[str] = ""
    #: Constructor-parameter syntax for the pipeline grammar, or ``""``.
    params_doc: ClassVar[str] = ""
    #: Output replays legally whenever the input does.
    preserves_legality: ClassVar[bool] = True
    #: Output makespan (completion minus start time) equals the input's.
    preserves_completion: ClassVar[bool] = True

    def __init__(self, backend: str | None = None):
        self.backend = backend
        self.stats: dict[str, Any] = {}

    def params(self) -> dict[str, Any]:
        """Constructor parameters, for :meth:`describe` and records."""
        return {}

    def describe(self) -> str:
        """Round-trippable pipeline syntax, e.g. ``shift{offset=5}``."""
        params = self.params()
        if not params:
            return self.name
        inner = ",".join(f"{key}={value}" for key, value in params.items())
        return f"{self.name}{{{inner}}}"

    def _use_numpy(self, schedule: Schedule) -> bool:
        """Ask the dispatch policy whether to run the columnar kernel."""
        if schedule.machine is not None and not schedule.machine.is_flat:
            # the objects oracles price every send with the flat params;
            # machine schedules must take the per-edge columnar kernels
            return True
        return _dispatch.use_numpy(schedule.num_sends, override=self.backend)

    def run(self, schedule: Schedule) -> Schedule:
        """Apply the pass; returns a new schedule, never mutates input."""
        raise NotImplementedError

    def run_implicit(self, schedule: "ImplicitSchedule") -> "ImplicitSchedule":
        """Apply the pass to an implicit schedule as a query rewrite.

        Only passes expressible as O(1) closed-form rewrites override
        this (``shift``, ``remap``); anything else would have to expand
        the plan to O(num_sends) columns, which defeats the implicit IR,
        so the default refuses loudly instead of materializing behind
        the caller's back.
        """
        raise TypeError(
            f"pass {self.name!r} would materialize an implicit schedule; "
            f"run it on schedule.materialize() if O(num_sends) memory is "
            f"acceptable"
        )

    def __repr__(self) -> str:
        backend = f", backend={self.backend!r}" if self.backend else ""
        return f"<{type(self).__name__} {self.describe()}{backend}>"


def refuse_implicit(
    reason: str,
) -> Callable[[SchedulePass, "ImplicitSchedule"], "ImplicitSchedule"]:
    """An explicit, documented ``run_implicit`` refusal for a class body.

    Passes that cannot rewrite an implicit plan in O(1) declare it
    loudly instead of inheriting the base refusal silently::

        run_implicit = refuse_implicit("canonical order is a column property")

    The declaration is what REPRO007 (``repro check``) looks for: every
    registered pass either implements ``run_implicit`` or carries one of
    these, so "this pass materializes" is always a reviewed decision,
    never an accident of inheritance.  The raised message keeps the
    ``would materialize`` phrasing of the base refusal.
    """

    def run_implicit(
        self: SchedulePass, schedule: "ImplicitSchedule"
    ) -> "ImplicitSchedule":
        raise TypeError(
            f"pass {self.name!r} would materialize an implicit schedule "
            f"({reason}); run it on schedule.materialize() if O(num_sends) "
            f"memory is acceptable"
        )

    return run_implicit


@dataclass(frozen=True)
class PassSpec:
    """Registry record for one pass (mirrors ``registry.CollectiveSpec``)."""

    name: str
    summary: str
    params_doc: str
    preserves_legality: bool
    preserves_completion: bool
    cls: type[SchedulePass]


_REGISTRY: dict[str, type[SchedulePass]] = {}

_P = TypeVar("_P", bound=type[SchedulePass])


def register_pass(cls: _P) -> _P:
    """Class decorator: add ``cls`` to the pass registry under its name."""
    name = cls.name
    if not name:
        raise ValueError(f"pass class {cls.__name__} declares no name")
    if name in _REGISTRY:
        raise ValueError(f"pass {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def pass_names() -> tuple[str, ...]:
    """Registered pass names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_pass_cls(name: str) -> type[SchedulePass]:
    """The pass class registered under ``name``; raises on unknown names."""
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown pass {name!r} (known: {', '.join(pass_names())})"
        )
    return cls


def get_pass_spec(name: str) -> PassSpec:
    """The :class:`PassSpec` record for ``name``."""
    cls = get_pass_cls(name)
    return PassSpec(
        name=cls.name,
        summary=cls.summary,
        params_doc=cls.params_doc,
        preserves_legality=cls.preserves_legality,
        preserves_completion=cls.preserves_completion,
        cls=cls,
    )


def pass_specs() -> tuple[PassSpec, ...]:
    """Every registered pass's spec, sorted by name."""
    return tuple(get_pass_spec(name) for name in pass_names())


def make_pass(name: str, **params: Any) -> SchedulePass:
    """Instantiate a registered pass from keyword parameters.

    Constructor signature mismatches (unknown or missing parameters) are
    reported as ``ValueError`` so pipeline-text errors surface uniformly.
    """
    cls = get_pass_cls(name)
    ctor: Callable[..., SchedulePass] = cls
    try:
        return ctor(**params)
    except TypeError as exc:
        raise ValueError(f"pass {name!r}: {exc}") from None
