"""Tests for the generalized Fibonacci machinery (Section 2 / Defn 2.5)."""

import pytest

from repro.core.fib import (
    broadcast_time,
    broadcast_time_postal,
    fib,
    fib_sequence,
    k_star,
    kitem_lower_bound,
    node_census,
    reachable,
    reachable_postal,
    single_sending_lower_bound,
)
from repro.params import LogPParams, postal


class TestFibSequence:
    def test_paper_L3_values(self):
        # the L=3 sequence underlying Figure 2 (P(7) = 9, P(11) = 41)
        assert fib_sequence(3, 11) == [1, 1, 1, 2, 3, 4, 6, 9, 13, 19, 28, 41]

    def test_L1_is_powers_of_two(self):
        assert fib_sequence(1, 6) == [1, 2, 4, 8, 16, 32, 64]

    def test_L2_is_fibonacci(self):
        assert fib_sequence(2, 8) == [1, 1, 2, 3, 5, 8, 13, 21, 34]

    def test_recurrence_holds(self):
        for L in (2, 3, 5, 7):
            seq = fib_sequence(L, 30)
            for i in range(L, 31):
                assert seq[i] == seq[i - 1] + seq[i - L]

    def test_prefix_sum_identity_fact_21(self):
        # Fact 2.1: 1 + sum_{i<=t} f_i = f_{t+L}
        for L in (1, 2, 3, 4, 6):
            seq = fib_sequence(L, 25 + L)
            for t in range(20):
                assert 1 + sum(seq[: t + 1]) == seq[t + L]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            fib_sequence(0, 5)
        with pytest.raises(ValueError):
            fib_sequence(3, -1)


class TestReachable:
    def test_theorem_22_postal(self):
        # P(t; L, 0, 1) = f_t
        for L in (1, 2, 3, 5):
            for t in range(12):
                assert reachable_postal(t, L) == fib(L, t)

    def test_general_matches_postal_when_postal(self):
        for L in (1, 2, 3, 5):
            p = postal(P=1, L=L)
            for t in range(10):
                assert reachable(t, p) == reachable_postal(t, L)

    def test_fig1_machine(self):
        # P=8, L=6, g=4, o=2 reaches 8 processors at exactly t=24
        p = LogPParams(P=8, L=6, o=2, g=4)
        assert reachable(24, p) == 8
        assert reachable(23, p) < 8

    def test_node_census_sums_to_reachable(self):
        p = LogPParams(P=1, L=4, o=1, g=2)
        for t in (0, 5, 13):
            assert sum(node_census(t, p)) == reachable(t, p)

    def test_census_at_zero(self):
        assert node_census(0, postal(P=1, L=3)) == [1]


class TestBroadcastTime:
    def test_is_inverse_of_reachable(self):
        for L in (1, 2, 3, 4):
            for P in range(1, 40):
                t = broadcast_time_postal(P, L)
                assert reachable_postal(t, L) >= P
                if t > 0:
                    assert reachable_postal(t - 1, L) < P

    def test_paper_values(self):
        assert broadcast_time_postal(9, 3) == 7  # Figure 2's T9
        assert broadcast_time_postal(41, 3) == 11  # Figure 3's tree
        assert broadcast_time_postal(13, 3) == 8  # Figure 5's machine

    def test_general_logp_fig1(self):
        assert broadcast_time(8, LogPParams(P=8, L=6, o=2, g=4)) == 24

    def test_single_processor_is_free(self):
        assert broadcast_time_postal(1, 5) == 0
        assert broadcast_time(1, LogPParams(P=1, L=5, o=2, g=3)) == 0

    def test_monotone_in_P(self):
        p = LogPParams(P=1, L=3, o=1, g=2)
        times = [broadcast_time(P, p) for P in range(1, 30)]
        assert times == sorted(times)


class TestKStar:
    def test_paper_example(self):
        # Figure 2 discussion: P=10, L=3 has k* = 2
        assert k_star(10, 3) == 2

    def test_bounded_by_L(self):
        # the paper proves k* <= L (k* = 0 is possible when P-1 = f_{n+1})
        for L in (1, 2, 3, 4, 5):
            for P in range(3, 60):
                assert 0 <= k_star(P, L) <= L

    def test_two_processors(self):
        assert k_star(2, 3) == 1

    def test_rejects_P1(self):
        with pytest.raises(ValueError):
            k_star(1, 3)


class TestKItemBounds:
    def test_fig2_lower_bound(self):
        # B(9)+L+(k-1)-k* = 7+3+7-2 = 15 for k=8, P=10, L=3
        assert kitem_lower_bound(10, 3, 8) == 15

    def test_single_sending_dominates_general(self):
        for L in (1, 2, 3, 4):
            for P in (3, 5, 10, 20):
                for k in (1, 2, 5, 10):
                    assert single_sending_lower_bound(P, L, k) >= kitem_lower_bound(P, L, k)

    def test_gap_is_exactly_kstar_minus_something(self):
        # single-sending LB - general LB = k* when k >= k*
        for L in (2, 3, 4):
            for P in (5, 10, 17):
                ks = k_star(P, L)
                k = ks + 3
                diff = single_sending_lower_bound(P, L, k) - kitem_lower_bound(P, L, k)
                assert diff == ks

    def test_k1_matches_single_item(self):
        for L in (1, 2, 3):
            for P in (3, 7, 12):
                assert single_sending_lower_bound(P, L, 1) == broadcast_time_postal(P - 1, L) + L
