# Convenience targets for logp-collectives.

PY ?= python3

.PHONY: install test bench figures sweeps examples all clean

install:
	$(PY) -m pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

bench:
	PYTHONPATH=src $(PY) -m repro.cli bench --out BENCH_PR2.json
	PYTHONPATH=src $(PY) -m pytest -m perf benchmarks/test_perf_regression.py

bench-micro:
	$(PY) -m pytest benchmarks/ --benchmark-only

figures:
	$(PY) -m repro.cli figures

sweeps:
	$(PY) -m repro.cli sweeps

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; $(PY) $$ex || exit 1; \
	done

all: test bench

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .hypothesis src/*.egg-info
