"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_machine_args(self):
        args = build_parser().parse_args(
            ["plan-bcast", "--P", "8", "--L", "6", "--o", "2", "--g", "4"]
        )
        assert (args.P, args.L, args.o, args.g) == (8, 6, 2, 4)

    def test_sum_requires_n_or_t(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan-sum", "--P", "4", "--L", "2"])


class TestCommands:
    def test_plan_bcast(self, capsys):
        assert main(["plan-bcast", "--P", "8", "--L", "6", "--o", "2", "--g", "4"]) == 0
        out = capsys.readouterr().out
        assert "B(P) = 24" in out
        assert "binomial" in out

    def test_plan_bcast_tree_and_timeline(self, capsys):
        main(["plan-bcast", "--P", "4", "--L", "2", "--show-tree", "--timeline"])
        out = capsys.readouterr().out
        assert "P0 @0" in out  # tree
        assert "P0 " in out    # timeline rows

    def test_plan_kitem(self, capsys):
        assert main(["plan-kitem", "--P", "10", "--L", "3", "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "completion:             17" in out
        assert "lower bound:    15" in out

    def test_plan_kitem_table(self, capsys):
        main(["plan-kitem", "--P", "5", "--L", "2", "--k", "3", "--table"])
        out = capsys.readouterr().out
        assert "time" in out

    def test_plan_sum_by_n(self, capsys):
        assert main([
            "plan-sum", "--P", "8", "--L", "5", "--o", "2", "--g", "4", "--n", "79",
        ]) == 0
        out = capsys.readouterr().out
        assert "t = 28 cycles" in out

    def test_plan_sum_by_t(self, capsys):
        main(["plan-sum", "--P", "4", "--L", "2", "--t", "10"])
        out = capsys.readouterr().out
        assert "operands" in out

    def test_plan_allreduce(self, capsys):
        assert main(["plan-allreduce", "--P", "9", "--L", "3"]) == 0
        out = capsys.readouterr().out
        assert "T = 7" in out

    def test_figures_single(self, capsys):
        assert main(["figures", "--only", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "B(P) = 24" in out

    def test_report(self, capsys):
        assert main(["report", "--P", "8", "--L", "6", "--o", "2", "--g", "4"]) == 0
        out = capsys.readouterr().out
        assert "# LogP collectives report" in out
        assert "B(P) = 24" in out
        assert "Summation" in out


class TestLintCommand:
    def test_lint_builders_are_error_free(self, capsys):
        for builder in ("bcast", "kitem", "all-to-all", "summation", "allreduce"):
            assert main(["lint", "--builder", builder]) == 0, builder
            out = capsys.readouterr().out
            assert "summary: 0 errors" in out

    def test_lint_from_file(self, tmp_path, capsys):
        from repro.core.single_item import optimal_broadcast_schedule
        from repro.params import LogPParams
        from repro.schedule.serialize import dump_schedule

        path = tmp_path / "bcast.json"
        dump_schedule(
            optimal_broadcast_schedule(LogPParams(P=8, L=6, o=2, g=4)), path
        )
        assert main(["lint", str(path)]) == 0
        assert "workload=broadcast" in capsys.readouterr().out

    def test_lint_fail_on_escalation(self, tmp_path, capsys):
        from repro.params import postal
        from repro.schedule.ops import Schedule, SendOp
        from repro.schedule.serialize import dump_schedule

        # legal but wasteful: proc 1 is delivered item 0 twice
        sched = Schedule(
            postal(3, 2),
            sends=[SendOp(0, 0, 1, 0), SendOp(1, 0, 2, 0), SendOp(4, 2, 1, 0)],
            initial={0: {0}},
        )
        path = tmp_path / "wasteful.json"
        dump_schedule(sched, path)
        assert main(["lint", str(path)]) == 0  # warnings pass --fail-on error
        capsys.readouterr()
        assert main(["lint", str(path), "--fail-on", "warning"]) == 1
        out = capsys.readouterr().out
        assert "SCHED005" in out
        assert main(["lint", str(path), "--fail-on", "never"]) == 0

    def test_lint_json_output_is_sarif(self, capsys):
        import json

        assert main(["lint", "--builder", "bcast", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-schedule-lint"

    def test_lint_select_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            main(["lint", "--builder", "bcast", "--select", "SCHED042"])
