"""Tests for the buffered (modified) model schedules (Theorem 3.8)."""

import pytest

from repro.core.fib import reachable_postal, single_sending_lower_bound
from repro.core.kitem.buffered import BufferedSchedule, buffered_schedule


class TestFig5:
    def test_exact_parameters(self):
        # L=3, P-1 = 13 = P(8), k=14: completion must be B + L + k - 1 = 24
        s = buffered_schedule(14, 8, 3)
        s.validate()
        assert s.P == 14
        assert s.completion == 24
        assert s.completion == s.bound

    def test_buffer_at_most_two(self):
        s = buffered_schedule(14, 8, 3)
        assert s.buffer_peak <= 2

    def test_has_delayed_items(self):
        # Figure 5 shows boxed (delayed) entries; our schedule has them too
        s = buffered_schedule(14, 8, 3)
        assert len(s.delayed_items()) > 0

    def test_single_sending(self):
        s = buffered_schedule(14, 8, 3)
        source_sends = [op for op in s.sends if op.src == 0]
        assert sorted(op.item for op in source_sends) == list(range(14))
        assert sorted(op.time for op in source_sends) == list(range(14))


class TestSweep:
    @pytest.mark.parametrize("L,t", [(2, 5), (2, 8), (3, 6), (3, 9), (4, 8), (5, 9)])
    @pytest.mark.parametrize("k", [1, 4, 11])
    def test_achieves_single_sending_bound(self, L, t, k):
        if reachable_postal(t, L) < 2:
            pytest.skip("degenerate machine")
        s = buffered_schedule(k, t, L)
        s.validate()
        assert s.completion <= single_sending_lower_bound(s.P, L, k)

    def test_every_processor_every_item(self):
        s = buffered_schedule(5, 6, 3)
        for p in range(1, s.P):
            items = {item for (proc, item) in s.receptions if proc == p}
            assert items == set(range(5))

    def test_one_reception_per_step(self):
        s = buffered_schedule(7, 7, 3)
        steps: dict[tuple[int, int], int] = {}
        for (p, _item), (_a, recv, _act) in s.receptions.items():
            key = (p, recv)
            assert key not in steps, "double reception"
            steps[key] = 1

    def test_receive_after_arrival(self):
        s = buffered_schedule(6, 6, 2)
        for (_p, _item), (arrival, recv, _act) in s.receptions.items():
            assert recv >= arrival


class TestValidation:
    def test_validate_catches_overfull_buffer(self):
        s = buffered_schedule(4, 5, 3)
        s.buffer_peak = 3
        with pytest.raises(ValueError, match="buffer"):
            s.validate()

    def test_validate_catches_missing_reception(self):
        s = buffered_schedule(4, 5, 3)
        key = next(iter(s.receptions))
        del s.receptions[key]
        with pytest.raises(ValueError):
            s.validate()
