"""The codebase checkers (REPRO001-REPRO008).

Each rule is a pure function from :class:`~repro.checkers.context.FileContext`
to a list of :class:`~repro.checkers.registry.Finding` records, registered
in :data:`~repro.checkers.registry.CHECKERS`.  All rules walk the one
AST the context parsed; none import the module under analysis, so a
broken or heavyweight module is as cheap to check as a clean one.

Rule catalogue (profiles in :mod:`repro.checkers.profiles`):

========== ======== ============= ==========================================
id         severity targets       checks
========== ======== ============= ==========================================
REPRO001   error    hot           Python loop / SendOp materializer over sends
REPRO002   error    all but       ``FAST_PATH_THRESHOLD`` comparison outside
                    dispatch      :mod:`repro.dispatch`
REPRO003   warning  everywhere    unbounded ``lru_cache`` / module-level
                                  mutable cache
REPRO004   error    everywhere    lock-guarded attribute mutated outside a
                                  ``with self._lock:`` block
REPRO005   error    keying        ``json.dumps`` without ``**CANONICAL_DUMPS``
REPRO006   error    keying        nondeterminism feeding content keys
REPRO007   error    everywhere    registered pass missing invariant
                                  declarations or implicit contract
REPRO008   warning  cli           ``raise`` without a message
========== ======== ============= ==========================================

REPRO001 and REPRO002 are the ported ``tools/lint_hot_loops.py`` gates;
their message strings are kept byte-identical so the shim's output (and
the muscle memory of everyone reading CI logs) survives the port.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.checkers.context import FileContext
from repro.checkers.diagnostics import Severity
from repro.checkers.profiles import BANNED_CALLS, THRESHOLD_NAME
from repro.checkers.registry import Finding, register_checker

__all__ = ["CACHE_NAME_RE", "NONDETERMINISTIC_CALLS", "RAISE_ALLOWLIST"]


def _walk(tree: ast.AST) -> Iterator[ast.AST]:
    return ast.walk(tree)


# -- REPRO001: hot-loop-over-sends ---------------------------------------


def _is_sends_attr(node: ast.expr) -> bool:
    """True for any expression shaped ``<something>.sends``."""
    return isinstance(node, ast.Attribute) and node.attr == "sends"


_LOOP_MESSAGE = (
    "python loop over `.sends` in a hot module (use the columnar arrays)"
)


@register_checker(
    id="REPRO001",
    name="hot-loop-over-sends",
    category="performance",
    severity=Severity.ERROR,
    summary="no Python-level loops over sends in the vectorized hot path",
    profiles=("hot",),
)
def check_hot_loops(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in _walk(ctx.tree):
        iterables: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            iterables.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in BANNED_CALLS:
                findings.append(
                    Finding(
                        line=node.lineno,
                        message=(
                            f"call to `{func.attr}()` materializes SendOp "
                            "objects in a hot module (use the columnar "
                            "arrays)"
                        ),
                    )
                )
            continue
        for iterable in iterables:
            if _is_sends_attr(iterable):
                findings.append(
                    Finding(line=node.lineno, message=_LOOP_MESSAGE)
                )
    return findings


# -- REPRO002: dispatch-threshold ownership ------------------------------


def _mentions_threshold(node: ast.expr) -> bool:
    """True if any sub-expression references the threshold knob."""
    for sub in _walk(node):
        if isinstance(sub, ast.Name) and sub.id == THRESHOLD_NAME:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == THRESHOLD_NAME:
            return True
    return False


@register_checker(
    id="REPRO002",
    name="dispatch-threshold-ownership",
    category="architecture",
    severity=Severity.ERROR,
    summary="objects-vs-numpy routing decisions live only in repro.dispatch",
    profiles=("-dispatch-owner",),
)
def check_dispatch_ownership(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in _walk(ctx.tree):
        if isinstance(node, ast.Compare) and any(
            _mentions_threshold(expr)
            for expr in [node.left, *node.comparators]
        ):
            findings.append(
                Finding(
                    line=node.lineno,
                    message=(
                        f"comparison against {THRESHOLD_NAME} outside "
                        "repro.dispatch "
                        "(call repro.dispatch.use_numpy() instead)"
                    ),
                )
            )
    return findings


# -- REPRO003: unbounded caches ------------------------------------------

#: Module-level names matching this are treated as caches / memo tables.
CACHE_NAME_RE = re.compile(r"cache|memo", re.IGNORECASE)

_MUTABLE_FACTORIES = frozenset(
    {"dict", "set", "list", "OrderedDict", "defaultdict"}
)


def _decorator_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _lru_cache_finding(deco: ast.expr) -> str | None:
    """The complaint for an unbounded cache decorator, or ``None``."""
    name = _decorator_name(deco)
    if name == "cache":
        return (
            "functools.cache is unbounded; use "
            "lru_cache(maxsize=<bound>) so long-running services have a "
            "memory ceiling"
        )
    if name == "lru_cache":
        return (
            "bare @lru_cache caches with the implicit default; declare an "
            "explicit maxsize=<bound> so the ceiling is visible and "
            "reviewed"
        )
    if isinstance(deco, ast.Call):
        name = _decorator_name(deco.func)
        if name not in ("lru_cache", "cache"):
            return None
        for keyword in deco.keywords:
            if keyword.arg == "maxsize":
                if (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is None
                ):
                    return (
                        "lru_cache(maxsize=None) is unbounded; give it an "
                        "explicit capacity"
                    )
                return None
        if deco.args:
            first = deco.args[0]
            if isinstance(first, ast.Constant) and first.value is None:
                return (
                    "lru_cache(None) is unbounded; give it an explicit "
                    "capacity"
                )
            return None
        return (
            "lru_cache() caches with the implicit default; declare an "
            "explicit maxsize=<bound> so the ceiling is visible and "
            "reviewed"
        )
    return None


def _is_mutable_container(value: ast.expr) -> bool:
    if isinstance(
        value,
        (ast.Dict, ast.DictComp, ast.List, ast.ListComp, ast.Set, ast.SetComp),
    ):
        return True
    if isinstance(value, ast.Call):
        name = _decorator_name(value.func)
        return name in _MUTABLE_FACTORIES
    return False


@register_checker(
    id="REPRO003",
    name="unbounded-cache",
    category="resource",
    severity=Severity.WARNING,
    summary="every cache declares an explicit, reviewable capacity",
)
def check_unbounded_caches(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in _walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in node.decorator_list:
                message = _lru_cache_finding(deco)
                if message is not None:
                    findings.append(
                        Finding(
                            line=deco.lineno,
                            message=message,
                            fixit="@lru_cache(maxsize=1024)",
                        )
                    )
    for stmt in ctx.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_container(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and CACHE_NAME_RE.search(
                target.id
            ):
                findings.append(
                    Finding(
                        line=stmt.lineno,
                        message=(
                            f"module-level mutable cache `{target.id}` "
                            "grows without bound for the process lifetime; "
                            "use a bounded structure or an instance-owned "
                            "cache with a capacity"
                        ),
                    )
                )
    return findings


# -- REPRO004: lock-guarded mutation discipline --------------------------

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})


def _self_attr(node: ast.expr) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_attr_names(cls: ast.ClassDef) -> set[str]:
    """Attributes assigned ``threading.Lock()`` / ``RLock()`` anywhere."""
    locks: set[str] = set()
    for node in _walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        if _decorator_name(value.func) not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                locks.add(attr)
    return locks


def _target_attrs(target: ast.expr) -> Iterator[str]:
    """Every ``self.X`` attribute written by an assignment target."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_attrs(element)
    elif isinstance(target, ast.Starred):
        yield from _target_attrs(target.value)
    else:
        attr = _self_attr(target)
        if attr is not None:
            yield attr


def _holds_lock(node: ast.stmt, locks: set[str]) -> bool:
    if not isinstance(node, (ast.With, ast.AsyncWith)):
        return False
    return any(
        _self_attr(item.context_expr) in locks for item in node.items
    )


def _mutations(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, locks: set[str]
) -> Iterator[tuple[int, str, bool]]:
    """Yield ``(line, attr, under_lock)`` for every ``self.X`` write."""

    def visit(node: ast.AST, under: bool) -> Iterator[tuple[int, str, bool]]:
        for child in ast.iter_child_nodes(node):
            child_under = under or (
                isinstance(child, ast.stmt) and _holds_lock(child, locks)
            )
            targets: list[ast.expr] = []
            if isinstance(child, ast.Assign):
                targets = child.targets
            elif isinstance(child, ast.AugAssign):
                targets = [child.target]
            elif isinstance(child, ast.AnnAssign):
                targets = [child.target] if child.value is not None else []
            for target in targets:
                for attr in _target_attrs(target):
                    yield child.lineno, attr, child_under
            yield from visit(child, child_under)

    yield from visit(fn, False)


@register_checker(
    id="REPRO004",
    name="lock-guarded-mutation",
    category="concurrency",
    severity=Severity.ERROR,
    summary="attributes mutated under a lock are never mutated without it",
)
def check_lock_discipline(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in _walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        locks = _lock_attr_names(node)
        if not locks:
            continue
        methods = [
            stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name != "__init__"
        ]
        writes = [
            (method, line, attr, under)
            for method in methods
            for line, attr, under in _mutations(method, locks)
        ]
        guarded = {attr for _, _, attr, under in writes if under}
        lock_name = sorted(locks)[0]
        for method, line, attr, under in writes:
            if under or attr not in guarded:
                continue
            findings.append(
                Finding(
                    line=line,
                    message=(
                        f"`self.{attr}` is written under "
                        f"`with self.{lock_name}:` elsewhere in "
                        f"`{node.name}` but mutated in `{method.name}` "
                        "outside the lock"
                    ),
                    fixit=f"wrap the mutation in `with self.{lock_name}:`",
                )
            )
    return findings


# -- REPRO005: canonical JSON in keying modules --------------------------


def _json_dump_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in _walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("dumps", "dump")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "json"
        ):
            yield node


def _passes_canonical_dumps(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg is not None:
            continue
        value = keyword.value
        if isinstance(value, ast.Name) and value.id == "CANONICAL_DUMPS":
            return True
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "CANONICAL_DUMPS"
        ):
            return True
    return False


@register_checker(
    id="REPRO005",
    name="non-canonical-json",
    category="determinism",
    severity=Severity.ERROR,
    summary="serialization in keyed paths routes through CANONICAL_DUMPS",
    profiles=("keying",),
)
def check_canonical_json(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for call in _json_dump_calls(ctx.tree):
        if not _passes_canonical_dumps(call):
            findings.append(
                Finding(
                    line=call.lineno,
                    message=(
                        "json serialization in a keying module without "
                        "**CANONICAL_DUMPS: byte order becomes "
                        "insertion-order-dependent, which silently forks "
                        "content hashes"
                    ),
                    fixit="json.dumps(obj, **CANONICAL_DUMPS)",
                )
            )
    return findings


# -- REPRO006: nondeterminism in content-key paths -----------------------

#: ``module.attr`` call pairs that can never feed a content key.
NONDETERMINISTIC_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("os", "urandom"),
        ("uuid", "uuid1"),
        ("uuid", "uuid4"),
    }
)

_NONDETERMINISTIC_MODULES = frozenset({"random", "secrets"})


@register_checker(
    id="REPRO006",
    name="nondeterministic-content-key",
    category="determinism",
    severity=Severity.ERROR,
    summary="content-addressed paths never consult clocks, RNGs or set order",
    profiles=("keying",),
)
def check_content_key_determinism(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in _walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
        ):
            continue
        module, attr = func.value.id, func.attr
        if (module, attr) in NONDETERMINISTIC_CALLS or (
            module in _NONDETERMINISTIC_MODULES
        ):
            findings.append(
                Finding(
                    line=node.lineno,
                    message=(
                        f"`{module}.{attr}()` in a keying module: "
                        "content keys must be pure functions of the "
                        "request, never of clocks or randomness"
                    ),
                )
            )
    for call in _json_dump_calls(ctx.tree):
        children = list(call.args) + [kw.value for kw in call.keywords]
        for child in children:
            for sub in _walk(child):
                if isinstance(sub, (ast.Set, ast.SetComp)):
                    findings.append(
                        Finding(
                            line=sub.lineno,
                            message=(
                                "set iteration feeds serialized output: "
                                "set order is hash-seed-dependent, so the "
                                "emitted bytes (and any content hash over "
                                "them) are nondeterministic"
                            ),
                            fixit="sorted(...) before serializing",
                        )
                    )
    return findings


# -- REPRO007: pass invariant declarations -------------------------------

_REQUIRED_INVARIANTS = ("preserves_legality", "preserves_completion")


def _class_assigned_names(cls: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            names.update(
                target.id
                for target in stmt.targets
                if isinstance(target, ast.Name)
            )
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


def _is_registered_pass(cls: ast.ClassDef) -> bool:
    return any(
        _decorator_name(deco) == "register_pass"
        for deco in cls.decorator_list
    )


@register_checker(
    id="REPRO007",
    name="pass-invariant-declaration",
    category="contract",
    severity=Severity.ERROR,
    summary="registered passes declare their invariants and implicit contract",
)
def check_pass_declarations(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in _walk(ctx.tree):
        if not isinstance(node, ast.ClassDef) or not _is_registered_pass(node):
            continue
        assigned = _class_assigned_names(node)
        methods = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for invariant in _REQUIRED_INVARIANTS:
            if invariant not in assigned:
                findings.append(
                    Finding(
                        line=node.lineno,
                        message=(
                            f"registered pass `{node.name}` does not "
                            f"declare `{invariant}` explicitly; the "
                            "PassManager verifies declared invariants, so "
                            "inherited defaults hide what was promised"
                        ),
                        fixit=(
                            f"{invariant}: ClassVar[bool] = True  "
                            "# (or False)"
                        ),
                    )
                )
        if "run_implicit" not in methods and "run_implicit" not in assigned:
            findings.append(
                Finding(
                    line=node.lineno,
                    message=(
                        f"registered pass `{node.name}` neither implements "
                        "`run_implicit` nor declares an explicit refusal; "
                        "implicit plans must be rewritten in O(1) or "
                        "refused loudly, never silently materialized"
                    ),
                    fixit=(
                        'run_implicit = refuse_implicit("<why this pass '
                        'needs the full send set>")'
                    ),
                )
            )
    return findings


# -- REPRO008: opaque raises on the CLI surface --------------------------

#: Exception classes that are idiomatically raised without a message.
RAISE_ALLOWLIST = frozenset(
    {
        "NotImplementedError",
        "KeyboardInterrupt",
        "StopIteration",
        "StopAsyncIteration",
    }
)


@register_checker(
    id="REPRO008",
    name="opaque-raise",
    category="diagnostics",
    severity=Severity.WARNING,
    summary="CLI-reachable raises carry a one-line actionable message",
    profiles=("cli",),
)
def check_opaque_raises(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in _walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name: str | None = None
        if isinstance(exc, ast.Name):
            name = exc.id
        elif (
            isinstance(exc, ast.Call)
            and not exc.args
            and not exc.keywords
        ):
            name = _decorator_name(exc.func)
        if name is None or name in RAISE_ALLOWLIST:
            continue
        findings.append(
            Finding(
                line=node.lineno,
                message=(
                    f"`raise {name}` without a message in a CLI-reachable "
                    "module; the convention is a one-line diagnostic the "
                    "CLI can surface as `repro: error: ...`"
                ),
                fixit=f'raise {name}("<what went wrong and what to do>")',
            )
        )
    return findings
