"""Backend dispatch: the one place that chooses objects vs numpy.

Two execution backends exist for every hot operation in this library —
a pure-Python *objects* path over :class:`~repro.schedule.ops.SendOp`
lists (simple, allocation-heavy, the property-tested oracle) and a
vectorized *numpy* path over the columnar IR
(:mod:`repro.schedule.columnar`).  Until PR 4 each consumer hand-rolled
its own ``schedule.num_sends >= FAST_PATH_THRESHOLD`` comparison, so the
cutoff logic was scattered across :mod:`repro.sim.validate` and
:mod:`repro.schedule.analysis` and could drift per call site.

This module owns that decision.  A single :class:`DispatchPolicy`
(mode ``auto`` / ``objects`` / ``numpy`` plus the auto-mode send-count
threshold) is consulted by every dispatching entry point; the AST gate
in ``tools/lint_hot_loops.py`` fails CI on any ``FAST_PATH_THRESHOLD``
comparison outside this file, so the policy cannot silently re-scatter.

Configuration layers (innermost wins):

1. defaults: ``mode="auto"``, threshold 1024 sends;
2. environment, read once at import: ``REPRO_DISPATCH=auto|objects|numpy``
   and ``REPRO_FAST_PATH_THRESHOLD=<int>`` (e.g. ``0`` forces the numpy
   engine everywhere in auto mode);
3. process-wide override: :func:`set_policy` (or monkeypatching
   :data:`_POLICY` in tests — every dispatch site reads it dynamically);
4. per-call override: the ``backend=`` keyword accepted by the
   dispatching functions, forwarded to :func:`use_numpy`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "AUTO",
    "OBJECTS",
    "NUMPY",
    "FAST_PATH_THRESHOLD",
    "DispatchPolicy",
    "get_policy",
    "set_policy",
    "use_numpy",
    "builder_backend",
]

AUTO = "auto"
OBJECTS = "objects"
NUMPY = "numpy"
#: ``columnar`` is accepted as a builder-side synonym for ``numpy``
#: (builders call their array-backed storage mode "columnar").
_MODES = (AUTO, OBJECTS, NUMPY, "columnar")

#: Default auto-mode cutoff: schedules with at least this many sends go
#: through the numpy kernels; below it the pure-Python paths win (no
#: array-conversion overhead).  ``REPRO_FAST_PATH_THRESHOLD`` overrides
#: it at import time; :func:`set_policy` overrides it at runtime.
FAST_PATH_THRESHOLD = 1024


def _normalize_mode(mode: str) -> str:
    if mode == "columnar":
        return NUMPY
    if mode not in (AUTO, OBJECTS, NUMPY):
        raise ValueError(
            f"unknown dispatch mode {mode!r}; expected one of "
            f"'auto', 'objects', 'numpy' (or 'columnar')"
        )
    return mode


@dataclass(frozen=True)
class DispatchPolicy:
    """The process-wide objects-vs-numpy decision rule.

    ``mode="auto"`` routes schedules with ``num_sends >= threshold``
    through the numpy kernels; ``"objects"`` pins the pure-Python oracle
    everywhere, ``"numpy"`` pins the vectorized engine everywhere.
    """

    mode: str = AUTO
    threshold: int = FAST_PATH_THRESHOLD

    def __post_init__(self) -> None:
        object.__setattr__(self, "mode", _normalize_mode(self.mode))
        if self.threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {self.threshold}")

    def use_numpy(self, num_sends: int, override: str | None = None) -> bool:
        """True iff ``num_sends`` should be processed by the numpy path.

        ``override`` is the per-call backend request (``None`` defers to
        the policy; ``"auto"`` applies the threshold even when the policy
        mode is pinned).
        """
        mode = self.mode if override is None else _normalize_mode(override)
        if mode == NUMPY:
            return True
        if mode == OBJECTS:
            return False
        return num_sends >= self.threshold


def _policy_from_env() -> DispatchPolicy:
    raw = os.environ.get("REPRO_FAST_PATH_THRESHOLD")
    if raw is None:
        threshold = FAST_PATH_THRESHOLD
    else:
        # this runs at `import repro` time — a bare int() traceback here
        # blames the importer, so name the env var and the bad value
        try:
            threshold = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_FAST_PATH_THRESHOLD={raw!r} is not an integer "
                f"(unset it or use a send count >= 0)"
            ) from None
        if threshold < 0:
            raise ValueError(
                f"REPRO_FAST_PATH_THRESHOLD={raw!r} must be >= 0 "
                f"(unset it or use a send count >= 0)"
            )
    return DispatchPolicy(
        mode=os.environ.get("REPRO_DISPATCH", AUTO),
        threshold=threshold,
    )


#: The active policy.  Read dynamically by every dispatch site, so
#: :func:`set_policy` (and test monkeypatching) take effect immediately.
_POLICY: DispatchPolicy = _policy_from_env()


def get_policy() -> DispatchPolicy:
    """The active :class:`DispatchPolicy`."""
    return _POLICY


def set_policy(policy: DispatchPolicy) -> DispatchPolicy:
    """Install ``policy`` process-wide; returns the previous policy."""
    global _POLICY
    previous = _POLICY
    _POLICY = policy
    return previous


def use_numpy(num_sends: int, override: str | None = None) -> bool:
    """Ask the active policy whether ``num_sends`` takes the numpy path."""
    return _POLICY.use_numpy(num_sends, override=override)


def builder_backend(
    supported: tuple[str, ...], override: str | None = None
) -> str:
    """The storage backend a schedule *builder* should emit.

    Builders name their array-backed mode ``"columnar"``; a policy (or
    per-call override) pinned to ``objects`` selects the object path when
    the builder supports it, anything else selects the columnar path.
    Raises ``ValueError`` when the override names a backend the builder
    does not implement.
    """
    if override is not None:
        if override not in supported and not (
            override in (NUMPY, AUTO) and "columnar" in supported
        ):
            raise ValueError(
                f"backend {override!r} not supported; choose from {supported}"
            )
        if override == OBJECTS:
            return OBJECTS
        return "columnar" if "columnar" in supported else supported[0]
    if _POLICY.mode == OBJECTS and OBJECTS in supported:
        return OBJECTS
    return "columnar" if "columnar" in supported else supported[0]
