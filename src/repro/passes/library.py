"""The built-in passes: five ported transforms + three normalizers.

Each pass routes through :mod:`repro.dispatch` between the vectorized
columnar kernel (:mod:`repro.passes.kernels`) and the pure-Python
objects oracle (:mod:`repro.schedule.transform`).  The two paths are
property-tested to produce byte-identical canonical JSON, so the oracle
is the specification and the kernel is the implementation.

Invariant table (see :class:`repro.passes.base.SchedulePass`):

=================  ==================  ====================
pass               preserves_legality  preserves_completion
=================  ==================  ====================
shift              yes                 yes (makespan)
remap              yes                 yes
reverse            yes                 yes
concat             yes                 no
restrict           yes                 no
heal               yes                 no
canonicalize       yes                 yes
prune-dead-sends   yes                 no
compact-time       yes                 no
=================  ==================  ====================
"""

from __future__ import annotations

from typing import Any, Callable, ClassVar, Hashable, Iterable, Mapping

from repro.passes import kernels
from repro.passes.base import SchedulePass, refuse_implicit, register_pass
from repro.schedule.implicit import ImplicitSchedule
from repro.schedule.ops import Schedule, SendOp

__all__ = [
    "ShiftPass",
    "RemapPass",
    "ReversePass",
    "ConcatPass",
    "RestrictPass",
    "HealPass",
    "CanonicalizePass",
    "PruneDeadSendsPass",
    "CompactTimePass",
]

Item = Hashable


def _oracle() -> Any:
    # transform.py imports this module at import time (it is a shim over
    # the passes); resolving the oracle lazily breaks the cycle.
    from repro.schedule import transform

    return transform


@register_pass
class ShiftPass(SchedulePass):
    """Translate every send and creation time by a constant offset."""

    name: ClassVar[str] = "shift"
    summary: ClassVar[str] = "translate all times by a constant offset"
    params_doc: ClassVar[str] = "offset=<int> (may be negative)"
    preserves_legality: ClassVar[bool] = True
    preserves_completion: ClassVar[bool] = True

    def __init__(self, offset: int = 0, backend: str | None = None):
        super().__init__(backend=backend)
        self.offset = int(offset)

    def params(self) -> dict[str, Any]:
        return {"offset": self.offset}

    def run(self, schedule: Schedule) -> Schedule:
        if self._use_numpy(schedule):
            return kernels.shift_columns(schedule, self.offset)
        return _oracle().shift_objects(schedule, self.offset)

    def run_implicit(self, schedule: ImplicitSchedule) -> ImplicitSchedule:
        return schedule.shifted(self.offset)


@register_pass
class RemapPass(SchedulePass):
    """Relabel processors by an injective mapping.

    Programmatic use passes ``mapping={old: new, ...}``; pipeline text
    uses the named permutation ``perm=reverse`` (``p -> P-1-p``).
    """

    name: ClassVar[str] = "remap"
    summary: ClassVar[str] = "relabel processors by an injective mapping"
    params_doc: ClassVar[str] = "perm=reverse | mapping={old: new} (API only)"
    preserves_legality: ClassVar[bool] = True
    preserves_completion: ClassVar[bool] = True

    def __init__(
        self,
        mapping: Mapping[int, int] | None = None,
        perm: str | None = None,
        backend: str | None = None,
    ):
        super().__init__(backend=backend)
        if (mapping is None) == (perm is None):
            raise ValueError("remap needs exactly one of mapping= or perm=")
        if perm is not None and perm != "reverse":
            raise ValueError(f"unknown remap perm {perm!r} (known: reverse)")
        self.mapping = dict(mapping) if mapping is not None else None
        self.perm = perm

    def params(self) -> dict[str, Any]:
        if self.perm is not None:
            return {"perm": self.perm}
        return {}

    def _mapping_for(
        self, schedule: Schedule | ImplicitSchedule
    ) -> dict[int, int]:
        if self.mapping is not None:
            return self.mapping
        top = schedule.params.P - 1
        return {p: top - p for p in range(schedule.params.P)}

    def run(self, schedule: Schedule) -> Schedule:
        mapping = self._mapping_for(schedule)
        if self._use_numpy(schedule):
            return kernels.remap_columns(schedule, mapping)
        return _oracle().remap_objects(schedule, mapping)

    def run_implicit(self, schedule: ImplicitSchedule) -> ImplicitSchedule:
        return schedule.remapped(self._mapping_for(schedule))


@register_pass
class ReversePass(SchedulePass):
    """Time-reverse the schedule (broadcast -> reduction, paper §4.2).

    Sends swap direction and run backwards from the completion time;
    items are relabelled ``(tag, original_dst)``.  ``initial`` overrides
    the default "every sender starts holding its item" placement (the
    reduction rewiring passes all-processors initial ownership);
    ``item_of`` customizes labelling and forces the objects oracle, as
    arbitrary Python labelling cannot be vectorized.
    """

    name: ClassVar[str] = "reverse"
    summary: ClassVar[str] = "time-reverse sends (broadcast <-> reduction)"
    params_doc: ClassVar[str] = "tag=<str> (item label prefix, default rev)"
    preserves_legality: ClassVar[bool] = True
    preserves_completion: ClassVar[bool] = True
    run_implicit = refuse_implicit("time reversal relabels every send's item")

    def __init__(
        self,
        tag: str = "rev",
        initial: dict[int, set[Item]] | None = None,
        item_of: Callable[[SendOp], Item] | None = None,
        backend: str | None = None,
    ):
        super().__init__(backend=backend)
        self.tag = tag
        self.initial = initial
        self.item_of = item_of

    def params(self) -> dict[str, Any]:
        if self.tag == "rev":
            return {}
        return {"tag": self.tag}

    def run(self, schedule: Schedule) -> Schedule:
        if self.item_of is None and self._use_numpy(schedule):
            return kernels.reverse_columns(
                schedule, tag=self.tag, initial=self.initial
            )
        return _oracle().reverse_objects(
            schedule, tag=self.tag, initial=self.initial, item_of=self.item_of
        )


@register_pass
class ConcatPass(SchedulePass):
    """Append a second schedule after this one finishes (API only).

    The second schedule's parameter is a live :class:`Schedule`, so this
    pass is constructed programmatically, not from pipeline text.
    """

    name: ClassVar[str] = "concat"
    summary: ClassVar[str] = "run a second schedule after the first finishes"
    params_doc: ClassVar[str] = "second=<Schedule> (API only)"
    preserves_legality: ClassVar[bool] = True
    preserves_completion: ClassVar[bool] = False
    run_implicit = refuse_implicit(
        "the appended schedule is already materialized columns"
    )

    def __init__(self, second: Schedule, backend: str | None = None):
        super().__init__(backend=backend)
        self.second = second

    def run(self, schedule: Schedule) -> Schedule:
        if self._use_numpy(schedule):
            return kernels.concat_columns(schedule, self.second)
        return _oracle().concat_objects(schedule, self.second)


def parse_procs(spec: str) -> set[int]:
    """Parse the pipeline-text processor-set grammar.

    ``"lo:hi"`` is the half-open range ``lo..hi-1``; ``"a+b+c"`` is an
    explicit set; a single integer is a singleton.
    """
    text = spec.strip()
    if ":" in text:
        lo_text, _, hi_text = text.partition(":")
        lo, hi = int(lo_text), int(hi_text)
        if hi <= lo:
            raise ValueError(f"empty processor range {spec!r}")
        return set(range(lo, hi))
    return {int(part) for part in text.split("+")}


@register_pass
class RestrictPass(SchedulePass):
    """Keep only sends whose endpoints both lie in a processor set."""

    name: ClassVar[str] = "restrict"
    summary: ClassVar[str] = "drop sends leaving a processor subset"
    params_doc: ClassVar[str] = "procs=<lo:hi | a+b+c>"
    preserves_legality: ClassVar[bool] = True
    preserves_completion: ClassVar[bool] = False
    run_implicit = refuse_implicit(
        "the surviving send set is data-dependent, not a closed form"
    )

    def __init__(
        self, procs: Iterable[int] | str, backend: str | None = None
    ):
        super().__init__(backend=backend)
        self.procs = parse_procs(procs) if isinstance(procs, str) else set(procs)

    def params(self) -> dict[str, Any]:
        return {"procs": "+".join(str(p) for p in sorted(self.procs))}

    def run(self, schedule: Schedule) -> Schedule:
        if self._use_numpy(schedule):
            return kernels.restrict_columns(schedule, self.procs)
        return _oracle().restrict_objects(schedule, self.procs)


@register_pass
class HealPass(SchedulePass):
    """Re-inform survivors orphaned by rank removal (broadcast only).

    The companion of ``restrict`` and of :class:`~repro.machine.model.
    FaultMaskedMachine`: drops every send touching a dead or removed
    rank (transitively — orphaned subtrees fall with their parent) and
    greedily re-attaches each orphaned survivor to the earliest
    informed sender, respecting per-level gap spacing.  ``procs``
    overrides the survivor set; by default every rank the machine
    reports alive must end up covered.  Sets ``stats`` from
    :class:`~repro.machine.heal.HealStats` (dropped/healed send counts,
    coverage before/after, makespans, and the survivor-count broadcast
    bound under flat pricing).
    """

    name: ClassVar[str] = "heal"
    summary: ClassVar[str] = "re-inform survivors orphaned by rank removal"
    params_doc: ClassVar[str] = "procs=<lo:hi | a+b+c> (optional survivor set)"
    preserves_legality: ClassVar[bool] = True
    preserves_completion: ClassVar[bool] = False
    run_implicit = refuse_implicit(
        "healing replays per-processor availability against the survivor set"
    )

    def __init__(
        self, procs: Iterable[int] | str | None = None, backend: str | None = None
    ):
        super().__init__(backend=backend)
        if procs is None:
            self.procs = None
        else:
            self.procs = (
                parse_procs(procs) if isinstance(procs, str) else set(procs)
            )

    def params(self) -> dict[str, Any]:
        if self.procs is None:
            return {}
        return {"procs": "+".join(str(p) for p in sorted(self.procs))}

    def run(self, schedule: Schedule) -> Schedule:
        # columnar-only: the kernel is vectorized over procs, and the
        # fixpoint has no objects oracle (legality is re-verified by the
        # manager / validator instead)
        from repro.machine.heal import heal_columns

        result, heal_stats = heal_columns(schedule, procs=self.procs)
        self.stats.update(
            {
                "dropped_sends": heal_stats.dropped_sends,
                "healed_sends": heal_stats.healed_sends,
                "uncovered_before": heal_stats.uncovered_before,
                "uncovered_after": heal_stats.uncovered_after,
                "makespan_before": heal_stats.makespan_before,
                "makespan_after": heal_stats.makespan_after,
                "completion_bound": heal_stats.completion_bound,
            }
        )
        return result


@register_pass
class CanonicalizePass(SchedulePass):
    """Stable ``(time, src, dst)`` sort + item-table compaction.

    After this pass, column storage order equals canonical JSON order and
    the item table holds exactly the referenced items in first-use order.
    Sets ``stats["dropped_items"]``.
    """

    name: ClassVar[str] = "canonicalize"
    summary: ClassVar[str] = "sort sends canonically, compact the item table"
    preserves_legality: ClassVar[bool] = True
    preserves_completion: ClassVar[bool] = True
    run_implicit = refuse_implicit(
        "canonical storage order is a property of materialized columns"
    )

    def run(self, schedule: Schedule) -> Schedule:
        if self._use_numpy(schedule):
            result, dropped = kernels.canonicalize_columns(schedule)
        else:
            result, dropped = _oracle().canonicalize_objects(schedule)
        self.stats["dropped_items"] = dropped
        return result


@register_pass
class PruneDeadSendsPass(SchedulePass):
    """Delete every SCHED004 dead send (destination already holds item).

    Sets ``stats["removed_sends"]``; the result re-lints SCHED004-clean
    in a single application (removal never changes first availability).
    """

    name: ClassVar[str] = "prune-dead-sends"
    summary: ClassVar[str] = "delete sends whose payload the dst already holds"
    preserves_legality: ClassVar[bool] = True
    preserves_completion: ClassVar[bool] = False
    run_implicit = refuse_implicit(
        "dead-send detection replays per-processor item availability"
    )

    def run(self, schedule: Schedule) -> Schedule:
        if self._use_numpy(schedule):
            result, removed = kernels.prune_dead_sends_columns(schedule)
        else:
            result, removed = _oracle().prune_dead_sends_objects(schedule)
        self.stats["removed_sends"] = removed
        return result


@register_pass
class CompactTimePass(SchedulePass):
    """Left-shift globally idle cycles without violating L/o/g spacing.

    Collapses timeline gaps no send's constraint horizon
    (``L + 2o + g``) reaches across; sets ``stats["reclaimed_cycles"]``.
    """

    name: ClassVar[str] = "compact-time"
    summary: ClassVar[str] = "collapse globally idle cycles in the timeline"
    preserves_legality: ClassVar[bool] = True
    preserves_completion: ClassVar[bool] = False
    run_implicit = refuse_implicit(
        "idle-gap detection scans the full materialized timeline"
    )

    def run(self, schedule: Schedule) -> Schedule:
        if self._use_numpy(schedule):
            result, reclaimed = kernels.compact_time_columns(schedule)
        else:
            result, reclaimed = _oracle().compact_time_objects(schedule)
        self.stats["reclaimed_cycles"] = reclaimed
        return result
