"""Repository tooling: generated API index.

:func:`generate_api_doc` walks the package's public surface (each
module's ``__all__``) and renders ``docs/API.md``; a test asserts the
committed file matches the live package, so the index can't go stale.

Regenerate with::

    python -m repro.tools
"""

from __future__ import annotations

import importlib
import inspect

MODULES = [
    "repro",
    "repro.params",
    "repro.dispatch",
    "repro.registry",
    "repro.registry.spec",
    "repro.registry.specs",
    "repro.core.fib",
    "repro.core.tree",
    "repro.core.pruning",
    "repro.core.single_item",
    "repro.core.all_to_all",
    "repro.core.combining",
    "repro.core.optimality",
    "repro.core.kitem.bounds",
    "repro.core.kitem.blocks",
    "repro.core.kitem.single_sending",
    "repro.core.kitem.star",
    "repro.core.kitem.buffered",
    "repro.core.continuous.relative",
    "repro.core.continuous.words",
    "repro.core.continuous.assignment",
    "repro.core.continuous.general",
    "repro.core.continuous.schedule",
    "repro.core.continuous.l2",
    "repro.core.summation.capacity",
    "repro.core.summation.schedule",
    "repro.schedule.ops",
    "repro.schedule.columnar",
    "repro.schedule.analysis",
    "repro.schedule.analysis_np",
    "repro.schedule.transform",
    "repro.schedule.serialize",
    "repro.schedule.implicit",
    "repro.passes",
    "repro.passes.base",
    "repro.passes.kernels",
    "repro.passes.library",
    "repro.passes.pipeline",
    "repro.passes.manager",
    "repro.passes.lowering",
    "repro.exec",
    "repro.exec.program",
    "repro.exec.lower",
    "repro.exec.engine",
    "repro.exec.transport",
    "repro.exec.trace",
    "repro.exec.run",
    "repro.exec.errors",
    "repro.serve",
    "repro.serve.keys",
    "repro.serve.cache",
    "repro.serve.service",
    "repro.serve.http",
    "repro.sim.machine",
    "repro.sim.validate",
    "repro.sim.validate_np",
    "repro.sim.trace",
    "repro.analyze",
    "repro.analyze.diagnostics",
    "repro.analyze.context",
    "repro.analyze.rules",
    "repro.analyze.engine",
    "repro.analyze.chunked",
    "repro.analyze.report",
    "repro.checkers",
    "repro.checkers.profiles",
    "repro.checkers.diagnostics",
    "repro.checkers.context",
    "repro.checkers.registry",
    "repro.checkers.rules",
    "repro.checkers.engine",
    "repro.checkers.report",
    "repro.baselines.trees",
    "repro.baselines.kitem",
    "repro.baselines.summation",
    "repro.viz.ascii",
    "repro.viz.tables",
    "repro.viz.digraph",
    "repro.viz.dot",
    "repro.viz.svg",
    "repro.experiments.figures",
    "repro.experiments.sweeps",
    "repro.experiments.ablations",
    "repro.experiments.robustness",
    "repro.experiments.conjecture",
    "repro.comm",
    "repro.loggp",
    "repro.workload",
    "repro.fitting",
    "repro.report",
    "repro.bench",
    "repro.cli",
]

__all__ = ["generate_api_doc", "MODULES"]


def _first_line(obj: object) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0] if doc else ""


def generate_api_doc() -> str:
    """Render the Markdown API index from the live package."""
    lines = [
        "# API index",
        "",
        "Generated from each module's `__all__` by `python -m repro.tools`;",
        "`tests/test_tools.py` keeps this file in sync with the code.",
        "",
    ]
    for name in MODULES:
        module = importlib.import_module(name)
        summary = _first_line(module)
        lines.append(f"## `{name}`")
        if summary:
            lines.append("")
            lines.append(summary)
        lines.append("")
        exported = getattr(module, "__all__", [])
        if name == "repro":
            lines.append(f"Re-exports {len(exported)} core symbols "
                         "(see module groups below).")
            lines.append("")
            continue
        for symbol in exported:
            attr = getattr(module, symbol)
            lines.append(f"- `{symbol}` — {_first_line(attr)}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


if __name__ == "__main__":  # pragma: no cover
    import pathlib

    target = pathlib.Path(__file__).resolve().parents[2] / "docs" / "API.md"
    target.write_text(generate_api_doc())
    print(f"wrote {target}")
