"""Tests for the verified pass-pipeline framework (``repro.passes``).

Four tiers:

* registry + pipeline grammar — names resolve, bad text fails loudly;
* manager semantics — records, differential verification (pre-existing
  corpus errors don't fail, *introduced* errors do), makespan invariant;
* normalization passes — canonicalize idempotence/JSON-invariance,
  prune-dead-sends clears SCHED004 in one application, compact-time
  reclaims idle cycles without breaking legality;
* backend twins — every pass byte-identical across the objects oracle
  and the columnar kernels (hypothesis over builder schedules), plus the
  transform round-trips promised by the issue (double reverse, restrict
  + remap commutation).
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze import lint_schedule
from repro.core.single_item import optimal_broadcast_schedule
from repro.params import LogPParams, postal
from repro.passes import (
    CanonicalizePass,
    PassManager,
    PassVerificationError,
    ReversePass,
    SchedulePass,
    ShiftPass,
    format_pipeline,
    get_pass_cls,
    get_pass_spec,
    make_pass,
    parse_pipeline,
    pass_names,
    register_pass,
    run_pipeline,
)
from repro.registry import plan
from repro.schedule.ops import Schedule, SendOp
from repro.schedule.serialize import load_schedule, schedule_to_json
from repro.schedule.transform import remap, restrict, reverse, shift
from repro.sim.machine import replay

CORPUS = Path(__file__).parent / "data" / "lint_corpus"
FIG1 = LogPParams(P=8, L=6, o=2, g=4)
SETTINGS = settings(max_examples=20, deadline=None)

ALL_PASSES = (
    "shift",
    "remap",
    "reverse",
    "concat",
    "restrict",
    "canonicalize",
    "prune-dead-sends",
    "compact-time",
)


@st.composite
def builder_schedules(draw):
    """A legal builder schedule in either storage backend."""
    kind = draw(st.sampled_from(["bcast", "a2a", "kitem"]))
    backend = draw(st.sampled_from(["objects", "columnar"]))
    if kind == "bcast":
        P = draw(st.integers(2, 12))
        L = draw(st.integers(1, 5))
        o = draw(st.integers(0, 2))
        g = draw(st.integers(max(1, o), 3))
        return plan("broadcast", LogPParams(P=P, L=L, o=o, g=g), backend=backend)
    if kind == "a2a":
        P = draw(st.integers(2, 10))
        return plan("all-to-all", postal(P=P, L=draw(st.integers(1, 4))), backend=backend)
    P = draw(st.integers(2, 8))
    # the kitem builder has no columnar variant; it always yields objects
    return plan(
        "kitem", postal(P=P, L=draw(st.integers(1, 3))), k=draw(st.integers(1, 4))
    )


class TestRegistry:
    def test_all_builtin_passes_registered(self):
        assert set(ALL_PASSES) <= set(pass_names())

    def test_unknown_pass_raises_with_known_list(self):
        with pytest.raises(ValueError, match="unknown pass 'bogus'.*canonicalize"):
            get_pass_cls("bogus")

    def test_duplicate_registration_rejected(self):
        cls = get_pass_cls("shift")
        with pytest.raises(ValueError, match="already registered"):
            register_pass(cls)

    def test_make_pass_reports_bad_params_as_value_error(self):
        with pytest.raises(ValueError, match="shift"):
            make_pass("shift", bogus_param=1)

    def test_specs_carry_declared_invariants(self):
        assert get_pass_spec("shift").preserves_completion
        assert not get_pass_spec("compact-time").preserves_completion
        assert all(get_pass_spec(n).preserves_legality for n in ALL_PASSES)


class TestPipelineParser:
    def test_parse_and_format_round_trip(self):
        text = "shift{offset=5},remap{perm=reverse},canonicalize"
        passes = parse_pipeline(text)
        assert [p.name for p in passes] == ["shift", "remap", "canonicalize"]
        assert passes[0].offset == 5
        assert format_pipeline(passes) == text

    def test_negative_int_param(self):
        (p,) = parse_pipeline("shift{offset=-3}")
        assert p.offset == -3

    def test_string_params_pass_through(self):
        (p,) = parse_pipeline("reverse{tag=red}")
        assert p.tag == "red"
        (r,) = parse_pipeline("restrict{procs=0:4}")
        assert r.procs == {0, 1, 2, 3}
        (r,) = parse_pipeline("restrict{procs=0+2+5}")
        assert r.procs == {0, 2, 5}

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            " , ",
            "shift{offset}",
            "shift{offset=}",
            "shift{offset=1,offset=2}",
            "shift{offset=1",
            "shift}offset=1{",
            "sh ift",
            "remap{perm=sideways}",
        ],
    )
    def test_malformed_pipelines_raise(self, bad):
        with pytest.raises(ValueError):
            parse_pipeline(bad)


class _BreakCausality(SchedulePass):
    """Deliberately illegal rewrite: claims legality, moves a send early."""

    name = "break-causality"
    summary = "test-only"

    def run(self, schedule: Schedule) -> Schedule:
        sends = sorted(schedule.sends)
        late = sends[-1]
        sends[-1] = SendOp(time=0, src=late.src, dst=late.dst, item=late.item)
        return Schedule(
            schedule.params, sends=sorted(sends), initial=schedule.initial
        )


class _StretchMakespan(SchedulePass):
    """Claims preserves_completion but pads the critical path."""

    name = "stretch"
    summary = "test-only"

    def run(self, schedule: Schedule) -> Schedule:
        sends = sorted(schedule.sends)
        first = sends[0]
        sends.append(
            SendOp(
                time=first.time + 1000,
                src=first.src,
                dst=first.dst,
                item=first.item,
            )
        )
        return Schedule(
            schedule.params, sends=sorted(sends), initial=schedule.initial
        )


class TestPassManager:
    def test_records_one_entry_per_pass(self):
        s = optimal_broadcast_schedule(FIG1)
        pm = PassManager("shift{offset=5},canonicalize", verify="all")
        out = pm.run(s)
        assert [r.name for r in pm.records] == ["shift", "canonicalize"]
        assert pm.records[0].description == "shift{offset=5}"
        assert all(r.report is not None for r in pm.records)
        assert out.num_sends == s.num_sends

    def test_verify_off_attaches_no_reports(self):
        pm = PassManager("canonicalize", verify="off")
        pm.run(optimal_broadcast_schedule(FIG1))
        assert pm.records[0].report is None

    def test_bad_verify_mode_rejected(self):
        with pytest.raises(ValueError, match="verify"):
            PassManager("canonicalize", verify="sometimes")

    def test_introduced_error_fails_verification(self):
        pm = PassManager([_BreakCausality()], verify="errors")
        with pytest.raises(PassVerificationError, match="SCHED001"):
            pm.run(optimal_broadcast_schedule(FIG1))

    def test_preexisting_errors_do_not_fail_verification(self):
        # differential baseline: the corpus file already violates
        # causality, so a normalization pass over it must verify clean
        broken = load_schedule(CORPUS / "non_causal.json")
        out = run_pipeline("canonicalize", broken, verify="errors")
        assert out.num_sends == broken.num_sends

    def test_makespan_invariant_enforced(self):
        pm = PassManager([_StretchMakespan()], verify="errors")
        with pytest.raises(PassVerificationError, match="makespan"):
            pm.run(optimal_broadcast_schedule(FIG1))

    def test_backend_override_applies_to_unpinned_passes_only(self):
        pinned = ShiftPass(1, backend="objects")
        pm = PassManager([pinned, CanonicalizePass()], backend="numpy")
        assert pm.passes[0].backend == "objects"
        assert pm.passes[1].backend == "numpy"

    def test_reverse_pipeline_is_legal_reduction(self):
        s = optimal_broadcast_schedule(FIG1)
        red = run_pipeline(
            [ReversePass(tag="red", initial={p: {("red", p)} for p in range(8)})],
            s,
            verify="all",
        )
        replay(red)


class TestNormalizationPasses:
    def test_canonicalize_is_idempotent_and_json_invariant(self):
        s = plan("all-to-all", postal(P=6, L=2))
        once = run_pipeline("canonicalize", s)
        twice = run_pipeline("canonicalize", once)
        assert schedule_to_json(once) == schedule_to_json(s)
        assert schedule_to_json(twice) == schedule_to_json(once)

    def test_canonicalize_sorts_storage_order(self):
        s = run_pipeline("canonicalize", plan("all-to-all", postal(P=5, L=2)))
        triples = [(op.time, op.src, op.dst) for op in s.sends]
        assert triples == sorted(triples)

    def test_prune_dead_sends_clears_sched004_in_one_pass(self):
        broken = load_schedule(CORPUS / "dead_send.json")
        assert "SCHED004" in lint_schedule(broken).rule_ids()
        pm = PassManager("prune-dead-sends", verify="all")
        pruned = pm.run(broken)
        assert pm.records[0].stats["removed_sends"] >= 1
        assert pruned.num_sends < broken.num_sends
        assert "SCHED004" not in lint_schedule(pruned).rule_ids()

    def test_prune_keeps_clean_schedules_intact(self):
        s = optimal_broadcast_schedule(FIG1)
        out = run_pipeline("prune-dead-sends", s)
        assert sorted(out.sends) == sorted(s.sends)

    def test_compact_time_reclaims_internal_idle_gap(self):
        # two bursts 1000 cycles apart on a reserve of L + 2o + g = 3:
        # everything between the reservations is globally idle
        params = postal(3, 2)
        sparse = Schedule(
            params,
            sends=[SendOp(0, 0, 1, 0), SendOp(1000, 0, 2, 0)],
            initial={0: {0}},
        )
        pm = PassManager("compact-time", verify="errors")
        compacted = pm.run(sparse)
        reclaimed = pm.records[0].stats["reclaimed_cycles"]
        assert reclaimed == 1000 - (params.L + 2 * params.o + params.g + 1)
        assert [op.time for op in sorted(compacted.sends)] == [0, 4]
        replay(compacted)
        # leading idle time is start-time, not slack: it stays put
        padded = shift(optimal_broadcast_schedule(FIG1), 500)
        pm2 = PassManager("compact-time", verify="errors")
        assert pm2.run(padded).sends == padded.sends
        assert pm2.records[0].stats["reclaimed_cycles"] == 0

    def test_compact_time_preserves_busy_schedules(self):
        s = optimal_broadcast_schedule(FIG1)
        pm = PassManager("compact-time", verify="errors")
        out = pm.run(s)
        # the optimal broadcast has no globally idle reserve-wide gap
        assert sorted(out.sends) == sorted(s.sends)
        assert pm.records[0].stats["reclaimed_cycles"] == 0

    def test_compact_time_shifts_creation_times_consistently(self):
        base = Schedule(
            postal(3, 2),
            sends=[SendOp(500, 0, 1, "x")],
            initial={0: {"x"}},
            source_items={"x": 500},
        )
        out = run_pipeline("compact-time", base, verify="errors")
        (op,) = out.sends
        assert out.source_items["x"] == op.time
        replay(shift(out, -op.time))


class TestBackendTwins:
    @SETTINGS
    @given(sched=builder_schedules(), data=st.data())
    def test_every_pass_byte_identical_across_backends(self, sched, data):
        name = data.draw(st.sampled_from(ALL_PASSES))
        if name == "shift":
            args = {"offset": data.draw(st.integers(0, 20))}
        elif name == "remap":
            args = {"perm": "reverse"}
        elif name == "concat":
            args = {"second": reverse(sched)}
        elif name == "restrict":
            procs = sorted(sched.processors())
            keep = data.draw(st.sets(st.sampled_from(procs), min_size=1))
            args = {"procs": set(keep)}
        else:
            args = {}
        fast = make_pass(name, **dict(args, backend="numpy")).run(sched)
        slow = make_pass(name, **dict(args, backend="objects")).run(sched)
        assert schedule_to_json(fast) == schedule_to_json(slow)

    @SETTINGS
    @given(sched=builder_schedules(), offset=st.integers(-60, 5))
    def test_shift_offset_agrees_across_backends(self, sched, offset):
        # negative offsets included: both backends must either raise the
        # same ValueError at transform time or agree byte-for-byte —
        # the columnar path may not silently emit negative-time columns
        outcomes = []
        for backend in ("numpy", "objects"):
            try:
                out = make_pass("shift", offset=offset, backend=backend).run(
                    sched
                )
                outcomes.append(("ok", schedule_to_json(out)))
            except ValueError as exc:
                outcomes.append(("raise", str(exc)))
        assert outcomes[0] == outcomes[1]

    def test_shift_guard_covers_item_creations(self):
        # creations can predate the earliest send; the guard must see them
        sched = Schedule(
            params=FIG1,
            sends=[SendOp(time=5, src=0, dst=1, item="x")],
            initial={0: {"x"}},
            source_items={"x": 2},
        )
        for backend in ("numpy", "objects"):
            assert shift(sched, -2, backend=backend).source_items == {"x": 0}
            with pytest.raises(
                ValueError, match="send or item creation before cycle 0"
            ):
                shift(sched, -3, backend=backend)

    def test_shift_guard_message_shared_with_implicit_ir(self):
        from repro.passes.kernels import SHIFT_BEFORE_ZERO
        from repro.schedule import implicit

        assert implicit._SHIFT_ERROR == SHIFT_BEFORE_ZERO

    @SETTINGS
    @given(sched=builder_schedules())
    def test_numpy_path_never_materializes_sendops(self, sched):
        arrayed = run_pipeline("canonicalize", sched, backend="numpy")
        assert arrayed.is_array_backed
        for name in ("shift", "reverse", "prune-dead-sends", "compact-time"):
            args = {"offset": 3} if name == "shift" else {}
            out = make_pass(name, **dict(args, backend="numpy")).run(arrayed)
            assert out.is_array_backed, name
        assert arrayed.is_array_backed


class TestTransformRoundTrips:
    @SETTINGS
    @given(sched=builder_schedules())
    def test_double_reverse_matches_canonicalize_up_to_shift(self, sched):
        rr = reverse(reverse(sched))
        canon = run_pipeline("canonicalize", sched)
        rr_triples = [(op.time, op.src, op.dst) for op in sorted(rr.sends)]
        base = min(t for t, _, _ in rr_triples)
        canon_triples = [(op.time, op.src, op.dst) for op in canon.sends]
        canon_base = min(t for t, _, _ in canon_triples)
        assert sorted((t - base, s, d) for t, s, d in rr_triples) == sorted(
            (t - canon_base, s, d) for t, s, d in canon_triples
        )

    @SETTINGS
    @given(sched=builder_schedules(), data=st.data())
    def test_restrict_then_remap_commutes(self, sched, data):
        procs = sorted(sched.processors())
        keep = set(data.draw(st.sets(st.sampled_from(procs), min_size=1)))
        # keep at least one initially-placed processor: if restriction
        # drops every initial placement, the Schedule constructor's
        # {0: {0}} default kicks in at different stages of the two
        # orders and the law degenerates
        keep.add(min(sched.initial))
        top = max(procs)
        mapping = {p: top - p for p in procs}
        a = remap(restrict(sched, keep), mapping)
        b = restrict(remap(sched, mapping), {mapping[p] for p in keep})
        assert schedule_to_json(a) == schedule_to_json(b)


class TestCorpusCanonicalizeByteStability:
    @pytest.mark.parametrize(
        "name", sorted(json.loads((CORPUS / "expected.json").read_text()))
    )
    def test_canonicalize_reproduces_the_checked_in_bytes(self, name):
        # mirrors the CI lint-job step: the corpus is serialized in
        # canonical order, so canonicalize must be a byte-level no-op
        path = CORPUS / f"{name}.json"
        out = run_pipeline("canonicalize", load_schedule(path), verify="errors")
        assert schedule_to_json(out) == path.read_text().rstrip("\n")
