"""Exception types for the lowering + execution stack.

Every error carries a one-line, actionable message — the CLI surfaces
them verbatim as ``repro: error: ...`` lines, and the checkers'
CLI-profile rule (REPRO008) holds this package to that contract.
"""

from __future__ import annotations

__all__ = [
    "ExecError",
    "ExecTimeout",
    "ExecVerificationError",
    "LoweringError",
    "TransportUnavailable",
]


class ExecError(RuntimeError):
    """Base class for execution failures (transport or executor)."""


class TransportUnavailable(ExecError):
    """The requested transport cannot run in this environment.

    Raised eagerly at transport construction (e.g. ``mpi`` without
    mpi4py) so callers — and test suites — can skip cleanly instead of
    failing mid-run.
    """


class ExecTimeout(ExecError):
    """The execution deadline expired with ranks still blocked.

    The message reuses the simulator's blocked-rank formatting
    (:func:`repro.sim.machine.format_blocked`): the blocked rank set,
    the earliest blocked instruction, and per-rank detail lines.
    """


class ExecVerificationError(ExecError):
    """The delivered multiset diverged from the simulator's."""


class LoweringError(ValueError):
    """The schedule cannot be compiled to per-rank programs.

    Lowering only rejects structural impossibilities (a send whose item
    is neither initially held nor produced by an earlier receive or
    reduction on the same rank); timing legality is the validator's
    business, not the lowerer's.
    """
