"""The plan service: cached, batched planning behind one object.

:class:`PlanService` wraps a :class:`~repro.serve.cache.PlanCache` and
the registry's builders:

* :meth:`PlanService.plan_json` — one request in, canonical plan JSON
  out, cache consulted first;
* :meth:`PlanService.plan_many_json` — a batch in, results fanned back
  out in order.  Duplicate keys inside the batch are planned (and
  cache-missed) exactly **once**: the batch is deduplicated on canonical
  keys before any planning happens, which is what makes the service's
  ``planned`` counter an exact build count rather than a request count;
* :meth:`PlanService.stats` — cache hit/miss/eviction counters plus the
  ``cache_info()`` of the bounded ``functools.lru_cache``\\ s in the
  planning core, so a long-running server's memory ceiling is
  observable, not assumed.

Everything returns *strings* (canonical plan JSON): the HTTP front end
serves them verbatim, and the hot path never deserializes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.serve.cache import PlanCache
from repro.serve.keys import (
    PlanRequest,
    build_plan,
    canonical_request,
    content_hash,
    request_from_mapping,
    request_key,
    request_key_hash,
)

__all__ = ["PlanService", "core_cache_stats"]

RequestLike = PlanRequest | Mapping[str, Any]


def core_cache_stats() -> dict[str, dict[str, int | None]]:
    """``cache_info()`` of the planning core's bounded lru_caches.

    One entry per memoized closed form, so ``/stats`` shows exactly how
    much process memory the planning core's memo tables can pin.
    """
    from repro.core.continuous import assignment
    from repro.core.fib import _prefix_sums

    # heterogeneous lru_cache wrappers; only cache_info() is used
    caches: dict[str, Any] = {
        "fib.prefix_sums": _prefix_sums,
        "continuous.find_base_cases": assignment.find_base_cases,
        "continuous.solve_cached": assignment._solve_cached,
    }
    out: dict[str, dict[str, int | None]] = {}
    for name, fn in caches.items():
        info = fn.cache_info()
        out[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "maxsize": info.maxsize,  # int | None; None would mean unbounded
            "currsize": info.currsize,
        }
    return out


class PlanService:
    """Cached, batched planning over the collective registry."""

    def __init__(
        self,
        capacity: int = 1024,
        directory: str | Path | None = None,
        cache: PlanCache | None = None,
    ) -> None:
        self.cache = cache if cache is not None else PlanCache(
            capacity=capacity, directory=directory
        )
        self._lock = threading.Lock()
        self.requests = 0
        self.planned = 0
        self.deduped = 0
        # Memoized canonicalization: raw request form -> (request, key,
        # key hash).  Canonicalizing (alias lookup, domain validation,
        # canonical-JSON dump) costs more than the LRU hit it guards, so
        # a hot mix would otherwise spend most of its time re-deriving
        # identical keys.  Keyed by the *raw* form — alias and canonical
        # spellings memoize separately but resolve to one plan key.
        self._keys: OrderedDict[Any, tuple[PlanRequest, str, str]] = (
            OrderedDict()
        )
        self._keys_capacity = 4 * self.cache.memory.capacity

    # -- request canonicalization -----------------------------------------

    def _resolve(self, request: RequestLike) -> PlanRequest:
        if isinstance(request, PlanRequest):
            return request
        return request_from_mapping(request)

    def _resolve_key(self, request: RequestLike) -> tuple[PlanRequest, str, str]:
        """Canonicalize, memoized: ``(request, key, key_hash)``."""
        memo_key: Any
        if isinstance(request, PlanRequest):
            memo_key = request
        else:
            try:
                memo_key = tuple(sorted(request.items()))
                hash(memo_key)
            except TypeError:
                memo_key = None  # unhashable values: canonicalize fresh
        if memo_key is not None:
            with self._lock:
                hit = self._keys.get(memo_key)
                if hit is not None:
                    self._keys.move_to_end(memo_key)
                    return hit
        req = self._resolve(request)
        key = request_key(req)
        resolved = (req, key, request_key_hash(req))
        if memo_key is not None:
            with self._lock:
                self._keys[memo_key] = resolved
                if len(self._keys) > self._keys_capacity:
                    self._keys.popitem(last=False)
        return resolved

    # -- single requests ---------------------------------------------------

    def plan_json(self, request: RequestLike) -> str:
        """Canonical plan JSON for one request, cache consulted first."""
        req, key, key_hash = self._resolve_key(request)
        with self._lock:
            self.requests += 1
        content = self.cache.lookup(key, key_hash)
        if content is None:
            content = build_plan(req)
            with self._lock:
                self.planned += 1
            self.cache.store(key, key_hash, content)
        return content

    def plan(
        self,
        name: str,
        params: Any = None,
        **kwargs: Any,
    ) -> str:
        """Convenience: canonicalize keyword arguments, then plan."""
        return self.plan_json(canonical_request(name, params, **kwargs))

    # -- batches -----------------------------------------------------------

    def plan_many_json(self, requests: Iterable[RequestLike]) -> list[str]:
        """Plan a batch; duplicate keys are planned at most once.

        The batch is deduplicated on canonical keys *before* planning:
        N requests with the same key cost one cache lookup and — on a
        miss — one build, then fan back out to all N slots in order.
        """
        resolved = [self._resolve_key(r) for r in requests]
        unique: dict[str, PlanRequest] = {}
        for req, key, _ in resolved:
            if key not in unique:
                unique[key] = req
        with self._lock:
            # plan_json below counts the unique keys; count the collapsed
            # duplicates here so `requests` stays the incoming total
            self.deduped += len(resolved) - len(unique)
            self.requests += len(resolved) - len(unique)
        results = {key: self.plan_json(req) for key, req in unique.items()}
        return [results[key] for _, key, _ in resolved]

    # -- observability -----------------------------------------------------

    def describe(self, request: RequestLike) -> dict[str, str]:
        """The request's canonical key and (planned) content hash."""
        req = self._resolve(request)
        return {
            "key": request_key(req),
            "key_hash": request_key_hash(req),
            "content_hash": content_hash(self.plan_json(req)),
        }

    def stats(self) -> dict[str, Any]:
        with self._lock:
            counters = {
                "requests": self.requests,
                "planned": self.planned,
                "deduped": self.deduped,
            }
        return {
            **counters,
            **self.cache.stats(),
            "core_caches": core_cache_stats(),
        }
