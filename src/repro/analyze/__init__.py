"""Static schedule analysis: rule-based lints over the columnar IR.

The validator (:mod:`repro.sim.validate`) answers "is this a *legal*
LogP execution?"; this package answers the structural questions the
paper's optimality arguments are made of — dead sends, duplicate
deliveries, acausal provenance, idle slack, single-sending discipline,
closed-form optimality gaps, Theorem 3.2 endgame shape — **without
running the simulator**.  Every rule is vectorized over
:class:`~repro.schedule.columnar.ScheduleColumns` (zero-copy for
array-backed schedules), so the full ten-rule sweep over a million-send
all-to-all completes in well under a second.

Quick start::

    from repro.analyze import lint_schedule, render_text

    report = lint_schedule(schedule)
    assert not report.errors
    print(render_text(report))

Command line::

    python -m repro.cli lint schedule.json
    python -m repro.cli lint --builder bcast --P 8 --L 6 --o 2 --g 4

Codebase-tier gates (mypy ``--strict`` scoping, ruff, and the
``tools/lint_hot_loops.py`` AST checker that bans Python-level loops
over ``.sends`` in hot modules) live in ``pyproject.toml`` and CI; this
package is the schedule tier.
"""

from repro.analyze.chunked import (
    AGGREGATE_RULES,
    PER_CHUNK_RULES,
    WHOLE_SCHEDULE_RULES,
    lint_implicit,
)
from repro.analyze.context import LintContext, Workload, detect_workload
from repro.analyze.diagnostics import (
    MAX_EMITTED_PER_RULE,
    Diagnostic,
    LintReport,
    Severity,
)
from repro.analyze.engine import assert_lint_clean, lint_schedule, resolve_rules
from repro.analyze.report import render_text, sarif_json, to_sarif
from repro.analyze.rules import RULES, Rule, get_rule, rule_ids

__all__ = [
    "Severity",
    "Diagnostic",
    "LintReport",
    "MAX_EMITTED_PER_RULE",
    "LintContext",
    "Workload",
    "detect_workload",
    "lint_schedule",
    "lint_implicit",
    "PER_CHUNK_RULES",
    "AGGREGATE_RULES",
    "WHOLE_SCHEDULE_RULES",
    "assert_lint_clean",
    "resolve_rules",
    "render_text",
    "to_sarif",
    "sarif_json",
    "RULES",
    "Rule",
    "rule_ids",
    "get_rule",
]
