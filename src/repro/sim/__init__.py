"""LogP machine simulator, validators and execution traces."""

from repro.sim.machine import Context, Machine, Program, replay
from repro.sim.trace import Activity, Trace, trace_from_schedule
from repro.sim.validate import (
    assert_valid,
    is_single_sending,
    single_reception_violations,
    violations,
)

__all__ = [
    "Machine", "Program", "Context", "replay",
    "Trace", "Activity", "trace_from_schedule",
    "violations", "assert_valid",
    "single_reception_violations", "is_single_sending",
]
