"""Two-level composed collectives for hierarchical machines.

Promotes the composition that ``examples/hierarchical_broadcast.py``
sketched — broadcast among node leaders on the slow inter-node fabric,
then fan out inside each node on the fast intra-node one — into library
builders the registry can plan with (``hier-bcast`` / ``hier-reduce``).

Two layers live here:

* :func:`hier_broadcast_schedule` / :func:`hier_reduction_schedule` —
  fully columnar builders over a :class:`HierarchicalMachine`.  Both
  phases come from the paper's optimal constructions (Theorem 2.1 trees
  on each fabric); the intra-node phase is one tiled template, so the
  build never materializes a ``SendOp`` and stays O(level schedules),
  not O(ranks x ranks).
* :func:`two_level_broadcast_plan` — the example's ``Communicator`` +
  :func:`repro.comm.embed_plan` flow, returning the composed schedule
  together with the per-phase cycle counts and the topology-oblivious
  flat baseline it beats.

Legality of the composition (per-level semantics, DESIGN S38): the
leader phase is the inter-node optimal broadcast with ranks relabelled
injectively (level-0 legal); each node's fan-out is the intra-node
optimal broadcast shifted to start exactly when its leader is informed,
on rank sets disjoint across nodes (level-1 legal); and a leader driving
its NIC and its local bus concurrently is precisely the multi-interface
concurrency the per-level validator licenses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fib import broadcast_time
from repro.core.single_item import schedule_from_tree
from repro.core.tree import optimal_tree
from repro.machine.model import HierarchicalMachine, MachineModel
from repro.schedule.columnar import ItemTable
from repro.schedule.ops import Schedule

__all__ = [
    "hier_broadcast_schedule",
    "hier_reduction_schedule",
    "TwoLevelBroadcast",
    "two_level_broadcast_plan",
]

_EMPTY = np.empty(0, dtype=np.int64)


def _require_hier(machine: MachineModel) -> HierarchicalMachine:
    if not isinstance(machine, HierarchicalMachine):
        raise ValueError(
            f"hierarchical builders need a HierarchicalMachine, got "
            f"{type(machine).__name__}"
        )
    return machine


def hier_broadcast_schedule(machine: MachineModel, item: object = 0) -> Schedule:
    """Two-level broadcast of one item from global rank 0.

    Phase 0 broadcasts among the node leaders with the optimal inter-node
    tree; phase 1 tiles the optimal intra-node tree inside every node,
    each tile starting the cycle its leader first holds the item.  Every
    rank is informed exactly once, so the plan lints warning-free.
    """
    m = _require_hier(machine)
    nodes, cores = m.nodes, m.cores

    if nodes > 1:
        inter = schedule_from_tree(optimal_tree(m.inter)).columns()
        inter_times = inter.times
        inter_srcs = inter.srcs * cores
        inter_dsts = inter.dsts * cores
        # the broadcast tree informs each node exactly once, so a plain
        # scatter of arrivals is the leaders' availability table
        avail = np.zeros(nodes, dtype=np.int64)
        avail[inter.dsts] = inter.arrivals
    else:
        inter_times = inter_srcs = inter_dsts = _EMPTY
        avail = np.zeros(1, dtype=np.int64)

    if cores > 1:
        tile = schedule_from_tree(optimal_tree(m.intra)).columns()
        T = len(tile)
        offsets = np.arange(nodes, dtype=np.int64) * cores
        intra_times = np.repeat(avail, T) + np.tile(tile.times, nodes)
        intra_srcs = np.tile(tile.srcs, nodes) + np.repeat(offsets, T)
        intra_dsts = np.tile(tile.dsts, nodes) + np.repeat(offsets, T)
    else:
        intra_times = intra_srcs = intra_dsts = _EMPTY

    return Schedule.from_arrays(
        m.flat_params,
        np.concatenate([inter_times, intra_times]),
        np.concatenate([inter_srcs, intra_srcs]),
        np.concatenate([inter_dsts, intra_dsts]),
        item_table=ItemTable([item]),
        initial={0: {item}},
        machine=m,
    )


def hier_reduction_schedule(machine: MachineModel) -> Schedule:
    """Two-level all-to-one reduction: the hier broadcast time-reversed.

    Per-edge arrivals make the reversal machine-aware for free: a send at
    ``t`` with level cost ``c`` becomes a send at ``completion - t - c``
    in the opposite direction, and the (src, dst) swap preserves each
    edge's level, so every per-level spacing argument mirrors.  Items
    follow the flat reduction's ``("red", proc)`` convention.
    """
    m = _require_hier(machine)
    from repro.passes.kernels import reverse_columns

    bcast = hier_broadcast_schedule(m)
    initial = {p: {("red", p)} for p in range(m.num_procs)}
    if len(bcast.columns()) == 0:
        return Schedule(params=m.flat_params, initial=initial, machine=m)
    return reverse_columns(bcast, tag="red", initial=initial)


@dataclass(frozen=True)
class TwoLevelBroadcast:
    """A composed two-level broadcast plan plus its cost decomposition."""

    machine: HierarchicalMachine
    #: The composed global schedule (machine-priced, array-backed).
    schedule: Schedule
    #: The leader phase lifted onto global ranks (flat-envelope params).
    leader_schedule: Schedule
    inter_cycles: int
    intra_cycles: int
    total_cycles: int
    #: The topology-oblivious optimal broadcast on the flat envelope.
    flat_cycles: int

    @property
    def speedup(self) -> float:
        """How much topology awareness buys over the oblivious plan."""
        if self.total_cycles == 0:
            return 1.0
        return self.flat_cycles / self.total_cycles


def two_level_broadcast_plan(machine: MachineModel) -> TwoLevelBroadcast:
    """The example's leader-plan + ``embed_plan`` fan-out, as library code.

    Plans the inter-node phase with a :class:`~repro.comm.Communicator`
    over the leaders, lifts it onto global ranks via
    :func:`repro.comm.embed_plan`, and pairs it with the composed
    columnar schedule and the flat baseline.
    """
    m = _require_hier(machine)
    # comm sits above this module in the layering; import lazily so the
    # machine package stays importable from the core builders
    from repro.comm import Communicator, embed_plan
    from repro.schedule.analysis import completion_time

    inter_plan = Communicator(m.inter).bcast(root=0)
    mapping = {i: m.leader(i) for i in range(m.nodes)}
    leader_schedule = embed_plan(inter_plan, mapping, params=m.flat_params)
    schedule = hier_broadcast_schedule(m)
    inter_cycles = broadcast_time(m.nodes, m.inter)
    intra_cycles = broadcast_time(m.cores, m.intra)
    return TwoLevelBroadcast(
        machine=m,
        schedule=schedule,
        leader_schedule=leader_schedule,
        inter_cycles=inter_cycles,
        intra_cycles=intra_cycles,
        total_cycles=completion_time(schedule),
        flat_cycles=broadcast_time(m.num_procs, m.flat_params),
    )
