"""Lowering + execution stack: run schedules on real transports.

The simulator answers "is this schedule legal and how long does the
model say it takes"; this package answers "does it actually run".  A
:class:`~repro.schedule.ops.Schedule` is *lowered* to frozen per-rank
:class:`~repro.exec.program.RankProgram`\\ s (ordered send/recv/reduce
instructions with data dependencies instead of times), *executed* on a
pluggable transport (``inproc`` threads, ``mp`` processes, ``mpi``
when mpi4py is present), and *verified* by comparing the delivered
``(src, dst, item)`` multiset byte-for-byte against the simulator's
realized schedule::

    from repro.exec import execute
    from repro.registry import plan

    result = execute(plan("broadcast", P=8, L=6, o=2, g=4),
                     transport="inproc", verify=True)
    result.trace.num_delivered  # 7 messages, same multiset as the sim

:class:`~repro.comm.VirtualCluster` fronts this package for the
high-level collectives API, ``repro run`` from the CLI, and the
``lower`` pass exposes the compilation step to ``repro opt``
pipelines.
"""

from repro.exec.errors import (
    ExecError,
    ExecTimeout,
    ExecVerificationError,
    LoweringError,
    TransportUnavailable,
)
from repro.exec.lower import lower_schedule
from repro.exec.program import (
    ExecPlan,
    RankProgram,
    RecvInstr,
    ReduceInstr,
    SendInstr,
)
from repro.exec.run import ExecResult, execute
from repro.exec.trace import ExecTrace, sim_delivered, verify_against_sim
from repro.exec.transport import (
    InprocTransport,
    MpiTransport,
    MpTransport,
    Transport,
    available_transports,
    get_transport,
)

__all__ = [
    "ExecError",
    "ExecPlan",
    "ExecResult",
    "ExecTimeout",
    "ExecTrace",
    "ExecVerificationError",
    "InprocTransport",
    "LoweringError",
    "MpTransport",
    "MpiTransport",
    "RankProgram",
    "RecvInstr",
    "ReduceInstr",
    "SendInstr",
    "Transport",
    "TransportUnavailable",
    "available_transports",
    "execute",
    "get_transport",
    "lower_schedule",
    "sim_delivered",
    "verify_against_sim",
]
