"""The collective records: one :class:`CollectiveSpec` per paper collective.

Seven specs cover the paper's six collectives (single-item, k-item,
continuous, all-to-all, combining/all-reduce, summation) plus the
all-to-one reduction (the time reversal of optimal broadcast, Section 5's
communication skeleton).  Each record normalizes its builder's historical
signature — ``single_sending_schedule(k, P, L)``,
``summation_schedule(t, params)``, ``simulate_combining(T, L)`` — behind
the uniform ``build(params, **extra)`` shape, declares its parameter
domain, and names the closed-form lower bound the construction is
measured against.

The SCHED008 closed forms previously hard-coded in
:mod:`repro.analyze.rules` live here as each spec's ``lint_bound``: the
rule adapts its context into a :class:`~repro.registry.spec.BoundQuery`
and the spec owning the detected workload answers.  The bound *strings*
are pinned by the lint corpus — change them only with the corpus.
"""

from __future__ import annotations

from typing import Any

from repro.core.all_to_all import (
    all_to_all_lower_bound,
    all_to_all_schedule,
    is_tight,
)
from repro.core.combining import combining_time, reduction_schedule, simulate_combining
from repro.core.continuous.assignment import solve
from repro.core.continuous.schedule import expand_assignment
from repro.core.fib import (
    broadcast_time,
    broadcast_time_postal,
    kitem_lower_bound,
    reachable_postal,
    single_sending_lower_bound,
)
from repro.core.kitem.single_sending import single_sending_schedule
from repro.core.single_item import optimal_tree, schedule_from_tree
from repro.core.summation.capacity import min_summation_time, operand_distribution
from repro.core.summation.schedule import summation_schedule
from repro.params import LogPParams
from repro.registry.spec import BoundQuery, CollectiveSpec, ParamField
from repro.schedule.implicit import implicit_broadcast, implicit_reduction
from repro.schedule.ops import Schedule

__all__ = ["SPECS"]

# Workload tags must match repro.analyze.context.Workload; they are kept
# as plain strings here so the registry never imports the lint engine.
_BROADCAST = "broadcast"
_KITEM = "kitem"
_SCATTERED = "scattered"


def _require_postal(name: str, params: LogPParams) -> None:
    if not params.is_postal:
        raise ValueError(
            f"{name}: requires the postal model (o=0, g=1), "
            f"got o={params.o}, g={params.g}"
        )


def _require_processors(name: str, params: LogPParams, minimum: int) -> None:
    if params.P < minimum:
        raise ValueError(
            f"{name}: P must be >= {minimum}, got {params.P}"
        )


# -- single-item broadcast (Section 2, Theorem 2.1) ----------------------


def _build_broadcast(params: LogPParams, *, backend: str = "columnar") -> Schedule:
    return schedule_from_tree(optimal_tree(params), backend=backend)


def _broadcast_lint_bound(q: BoundQuery) -> tuple[int, str] | None:
    return broadcast_time(q.participants, q.params), "B(P) (Thm 2.1)"


# -- k-item broadcast (Section 3, Theorems 3.1/3.6) ----------------------


def _check_kitem_machine(params: LogPParams) -> None:
    _require_postal("kitem", params)
    _require_processors("kitem", params, 2)


def _build_kitem(params: LogPParams, *, k: int) -> Schedule:
    return single_sending_schedule(k, params.P, params.L)


def _kitem_lint_bound(q: BoundQuery) -> tuple[int, str] | None:
    if not q.params.is_postal:
        return None
    k = q.n_items
    if q.single_sending:
        # the source really is single-sending, so the tighter
        # B(P-1) + L + k - 1 bound (Thms 3.6/3.7) applies
        return (
            single_sending_lower_bound(q.participants, q.params.L, k),
            f"single-sending bound B(P-1)+L+k-1 (Thm 3.6/3.7, k={k})",
        )
    return (
        kitem_lower_bound(q.participants, q.params.L, k),
        f"k-item counting bound (Thm 3.1, k={k})",
    )


# -- continuous broadcast (Section 3.1-3.3, Theorem 3.3 / Cor 3.1) -------


def _check_continuous_machine(params: LogPParams) -> None:
    _require_postal("continuous", params)
    _require_processors("continuous", params, 2)
    if params.L < 3:
        raise ValueError(
            f"continuous: block-cyclic schedules need L >= 3 "
            f"(Theorems 3.4/3.5 rule out L={params.L}); "
            f"use the kitem builder for small latencies"
        )


def _continuous_steps(params: LogPParams) -> int:
    """The per-item tree time ``t`` with ``P - 1 = P(t)``, or raise."""
    t = broadcast_time_postal(params.P - 1, params.L)
    if reachable_postal(t, params.L) != params.P - 1:
        valid = reachable_postal(t, params.L) + 1
        raise ValueError(
            f"continuous: P-1 must equal a reachable-set size P(t) for "
            f"L={params.L}; got P={params.P} (nearest valid P is {valid})"
        )
    return t


def _build_continuous(params: LogPParams, *, k: int) -> Schedule:
    t = _continuous_steps(params)
    assignment = solve(t, params.L)
    if assignment is None:
        raise ValueError(
            f"continuous: the block-cyclic instance I({t}) is unsolvable "
            f"for L={params.L} (see Theorems 3.4/3.5)"
        )
    return expand_assignment(assignment, num_items=k)


# -- all-to-all broadcast (Section 4.1) ----------------------------------


def _build_all_to_all(
    params: LogPParams, *, backend: str = "columnar"
) -> Schedule:
    return all_to_all_schedule(params, backend=backend)


def _a2a_lint_bound(q: BoundQuery) -> tuple[int, str] | None:
    # only a genuine all-to-all (every item reaches every participant,
    # uniformly many items per processor) has a closed form
    if not q.full_coverage:
        return None
    if q.n_items % q.participants:
        return None
    m = q.n_items // q.participants
    P = q.participants
    if m == 1:
        return all_to_all_lower_bound(q.params.with_processors(P)), (
            "all-to-all bound L+2o+(P-2)g (S4.1)"
        )
    return (
        q.params.send_cost + (m * (P - 1) - 1) * q.params.g,
        f"{m}-item all-to-all bound L+2o+({m}(P-1)-1)g (S4.1)",
    )


# -- summation (Section 5, Lemma 5.1 / Figure 6) -------------------------


def _normalize_summation(
    params: LogPParams, extra: dict[str, Any]
) -> dict[str, Any]:
    n, t = extra.get("n"), extra.get("t")
    if (n is None) == (t is None):
        raise ValueError(
            "summation: give exactly one of n= (operands) or t= (time budget)"
        )
    if t is None:
        t = min_summation_time(n, params)
    else:
        try:
            n = sum(operand_distribution(t, params))
        except ValueError as exc:
            raise ValueError(f"summation: {exc}") from None
        if n < 1:
            raise ValueError(
                f"summation: time budget t={t} has zero operand capacity "
                f"on {params}"
            )
    return {"n": n, "t": t}


def _summation_machine(params: LogPParams, t: int, n: int) -> LogPParams:
    """The participating sub-machine for an optimal t-cycle summation.

    ``min_summation_time`` optimizes over the number of participating
    processors, so its ``t`` may only be feasible on fewer than ``P``
    processors (a lone processor sums ``n`` operands in ``n - 1`` cycles
    with no sends at all).  Pick the largest feasible processor count
    whose capacity covers ``n``.
    """
    for P in range(params.P, 0, -1):
        sub = params.with_processors(P)
        try:
            capacity = sum(operand_distribution(t, sub))
        except ValueError:
            continue
        if capacity >= n:
            return sub
    raise ValueError(
        f"summation: no subset of {params} sums {n} operands by t={t}"
    )


def _build_summation(params: LogPParams, *, n: int, t: int) -> Schedule:
    return summation_schedule(t, _summation_machine(params, t, n)).to_schedule()


def _summation_lower_bound(params: LogPParams, *, n: int, t: int) -> int:
    return min_summation_time(n, params)


def _summation_tight(params: LogPParams, *, n: int, t: int) -> bool:
    return t == min_summation_time(n, params)


# -- combining broadcast / all-reduce (Section 4.2, Theorem 4.1) ---------


def _check_allreduce_machine(params: LogPParams) -> None:
    _require_postal("allreduce", params)
    _require_processors("allreduce", params, 2)


def _build_allreduce(params: LogPParams) -> Schedule:
    T = combining_time(params.P, params.L)
    return simulate_combining(T, params.L).schedule


# -- all-to-one reduction (time-reversed broadcast) ----------------------


def _build_reduction(params: LogPParams) -> Schedule:
    return reduction_schedule(params)


# -- hierarchical two-level collectives (machine layer, DESIGN S38) ------


def _resolve_hier_machine(
    name: str, params: LogPParams, machine: Any
) -> tuple[Any, Any]:
    """Default / unwrap / sanity-check the machine for the hier builders.

    Returns ``(machine, base)`` where ``base`` is the underlying
    :class:`~repro.machine.model.HierarchicalMachine` the composition
    runs on (a fault mask is peeled off for building and re-attached to
    the result, so a masked plan lints its dead-rank traffic and then
    heals).  With no machine given, ``params.P`` is factored into the
    squarest nodes x cores hierarchy so the flat CLI flags still work.
    """
    from repro.machine.model import (
        FaultMaskedMachine,
        HierarchicalMachine,
        default_hier_machine,
    )

    if machine is None:
        machine = default_hier_machine(params)
    base = machine.base if isinstance(machine, FaultMaskedMachine) else machine
    if not isinstance(base, HierarchicalMachine):
        raise ValueError(
            f"{name}: needs a hierarchical machine, got "
            f"{type(machine).__name__} (pass machine=HierarchicalMachine(...) "
            f"or omit it for the default P-factoring)"
        )
    if machine.num_procs != params.P:
        raise ValueError(
            f"{name}: machine has {machine.num_procs} ranks but params.P "
            f"is {params.P}"
        )
    return machine, base


def _attach_machine(schedule: Schedule, machine: Any) -> Schedule:
    """Rewrap a built schedule with the (possibly fault-masked) machine."""
    if machine == schedule.machine:
        return schedule
    cols = schedule.columns()
    return Schedule.from_arrays(
        schedule.params,
        cols.times,
        cols.srcs,
        cols.dsts,
        cols.items,
        cols.table,
        initial=schedule.initial,
        source_items=schedule.source_items,
        machine=machine,
    )


def _build_hier_broadcast(
    params: LogPParams, *, machine: Any = None
) -> Schedule:
    from repro.machine.compose import hier_broadcast_schedule

    machine, base = _resolve_hier_machine("hier-bcast", params, machine)
    return _attach_machine(hier_broadcast_schedule(base), machine)


def _build_hier_reduction(
    params: LogPParams, *, machine: Any = None
) -> Schedule:
    from repro.machine.compose import hier_reduction_schedule

    machine, base = _resolve_hier_machine("hier-reduce", params, machine)
    return _attach_machine(hier_reduction_schedule(base), machine)


def _hier_lower_bound(params: LogPParams) -> int:
    """Closed-form lower bound for the default two-level machine.

    Relax every edge to the pointwise-min level parameters: any schedule
    legal on the hierarchy is legal on that (uniformly cheaper) flat
    machine, so the flat broadcast optimum under the relaxed params
    bounds the hierarchical completion from below.  (Per-component mins
    stay a valid LogP tuple: each level has o <= g, so min o <= min g.)
    """
    from repro.machine.model import default_hier_machine

    m = default_hier_machine(params)
    relaxed = LogPParams(
        P=m.num_procs,
        L=min(p.L for p in m.levels),
        o=min(p.o for p in m.levels),
        g=min(p.g for p in m.levels),
    )
    return broadcast_time(m.num_procs, relaxed)


def _always(params: LogPParams, **extra: Any) -> bool:
    return True


SPECS: tuple[CollectiveSpec, ...] = (
    CollectiveSpec(
        name="broadcast",
        aliases=("bcast", "single-item"),
        summary="optimal single-item broadcast from the universal tree",
        paper="Section 2, Figure 1",
        theorem="Thm 2.1",
        build=_build_broadcast,
        implicit_build=implicit_broadcast,
        check_machine=lambda p: _require_processors("broadcast", p, 1),
        lower_bound=lambda params: broadcast_time(params.P, params),
        tight=_always,
        backends=("columnar", "objects"),
        workload=_BROADCAST,
        lint_bound=_broadcast_lint_bound,
        figures=(("1", "fig1_single_item"),),
        sample_cases=(
            {"P": 8, "L": 6, "o": 2, "g": 4},
            {"P": 2, "L": 1},
            {"P": 16, "L": 4, "o": 1, "g": 2},
            {"P": 1, "L": 3},
        ),
    ),
    CollectiveSpec(
        name="kitem",
        aliases=("k-item",),
        summary="single-sending k-item broadcast (postal model)",
        paper="Sections 3.2-3.4, Figures 4-5",
        theorem="Thms 3.1/3.6",
        build=_build_kitem,
        extra_params=(
            ParamField("k", "number of items to broadcast", minimum=1),
        ),
        check_machine=_check_kitem_machine,
        lower_bound=lambda params, k: kitem_lower_bound(params.P, params.L, k),
        workload=_KITEM,
        lint_bound=_kitem_lint_bound,
        figures=(("4", "fig4_reception_table"), ("5", "fig5_buffered")),
        sample_cases=(
            {"P": 10, "L": 3, "k": 8},
            {"P": 2, "L": 2, "k": 3},
            {"P": 5, "L": 2, "k": 1},
            {"P": 9, "L": 4, "k": 5},
        ),
    ),
    CollectiveSpec(
        name="continuous",
        aliases=("continuous-broadcast",),
        summary="continuous broadcast via block-cyclic schedules",
        paper="Sections 3.1-3.3, Figures 2-3",
        theorem="Thm 3.3 / Cor 3.1",
        build=_build_continuous,
        extra_params=(
            ParamField("k", "number of items in the window", minimum=1),
        ),
        check_machine=_check_continuous_machine,
        lower_bound=lambda params, k: single_sending_lower_bound(
            params.P, params.L, k
        ),
        tight=_always,
        figures=(("2", "fig2_continuous"), ("3", "fig3_digraph")),
        sample_cases=(
            {"P": 10, "L": 3, "k": 8},
            {"P": 10, "L": 3, "k": 1},
            {"P": 11, "L": 4, "k": 5},
        ),
    ),
    CollectiveSpec(
        name="all-to-all",
        aliases=("a2a", "alltoall"),
        summary="cyclic all-to-all broadcast",
        paper="Section 4.1",
        theorem="S4.1 bound",
        build=_build_all_to_all,
        check_machine=lambda p: _require_processors("all-to-all", p, 2),
        lower_bound=all_to_all_lower_bound,
        tight=lambda params: is_tight(params),
        backends=("columnar", "objects"),
        workload=_SCATTERED,
        lint_bound=_a2a_lint_bound,
        sample_cases=(
            {"P": 8, "L": 6, "o": 2, "g": 4},
            {"P": 16, "L": 4},
            {"P": 2, "L": 1},
            {"P": 5, "L": 3, "o": 1, "g": 2},
        ),
    ),
    CollectiveSpec(
        name="summation",
        aliases=("sum",),
        summary="optimal summation (time-reversed broadcast tree)",
        paper="Section 5, Figure 6",
        theorem="Lem 5.1",
        build=_build_summation,
        extra_params=(
            ParamField("n", "number of operands", required=False, minimum=1),
            ParamField("t", "time budget in cycles", required=False, minimum=0),
        ),
        check_machine=lambda p: _require_processors("summation", p, 1),
        normalize_extra=_normalize_summation,
        lower_bound=_summation_lower_bound,
        tight=_summation_tight,
        figures=(("6", "fig6_summation"),),
        sample_cases=(
            {"P": 8, "L": 5, "o": 2, "g": 4, "n": 79},
            {"P": 4, "L": 2, "n": 10},
            {"P": 4, "L": 2, "t": 10},
            {"P": 1, "L": 1, "n": 5},
        ),
    ),
    CollectiveSpec(
        name="allreduce",
        aliases=("combining", "combining-broadcast", "all-reduce"),
        summary="combining broadcast: every processor learns the sum",
        paper="Section 4.2",
        theorem="Thm 4.1",
        build=_build_allreduce,
        check_machine=_check_allreduce_machine,
        lower_bound=lambda params: combining_time(params.P, params.L),
        tight=_always,
        sample_cases=(
            {"P": 9, "L": 3},
            {"P": 8, "L": 6},
            {"P": 2, "L": 1},
        ),
    ),
    CollectiveSpec(
        name="reduction",
        aliases=("reduce", "all-to-one"),
        summary="all-to-one reduction (time-reversed optimal broadcast)",
        paper="Section 4.2 / 5",
        theorem="Thm 2.1 (reversal)",
        build=_build_reduction,
        implicit_build=implicit_reduction,
        check_machine=lambda p: _require_processors("reduction", p, 1),
        lower_bound=lambda params: broadcast_time(params.P, params),
        tight=_always,
        sample_cases=(
            {"P": 8, "L": 6, "o": 2, "g": 4},
            {"P": 5, "L": 2},
        ),
    ),
    CollectiveSpec(
        name="hier-bcast",
        aliases=("hierarchical-broadcast",),
        summary="two-level broadcast: optimal trees composed per fabric level",
        paper="Section 2 composed per level (DESIGN S38)",
        theorem="Thm 2.1 per level",
        build=_build_hier_broadcast,
        check_machine=lambda p: _require_processors("hier-bcast", p, 1),
        lower_bound=_hier_lower_bound,
        backends=("columnar",),
        machine_aware=True,
        sample_cases=(
            {"P": 8, "L": 6, "o": 2, "g": 4},
            {"P": 12, "L": 4, "o": 1, "g": 2},
            {"P": 2, "L": 1},
        ),
    ),
    CollectiveSpec(
        name="hier-reduce",
        aliases=("hierarchical-reduction",),
        summary="two-level all-to-one reduction (time-reversed hier-bcast)",
        paper="Sections 2 and 4.2 composed per level (DESIGN S38)",
        theorem="Thm 2.1 per level (reversal)",
        build=_build_hier_reduction,
        check_machine=lambda p: _require_processors("hier-reduce", p, 1),
        lower_bound=_hier_lower_bound,
        backends=("columnar",),
        machine_aware=True,
        sample_cases=(
            {"P": 8, "L": 6, "o": 2, "g": 4},
            {"P": 12, "L": 4, "o": 1, "g": 2},
            {"P": 2, "L": 1},
        ),
    ),
)
