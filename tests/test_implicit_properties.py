"""Implicit-vs-materialized equivalence (property-based).

The implicit IR's whole contract is that it is *observationally* the
materialized schedule: concatenating streamed chunks must reproduce the
full build byte-for-byte (canonical JSON), the per-rank queries must
agree with the realized send list, legality must hold under the
simulator's validators, and the chunked lint engine must report the
same totals as the full engine on every rule both run — across random
machines, tree families, chunk sizes, and shift/remap rewrites.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze import lint_schedule
from repro.analyze.chunked import lint_implicit
from repro.params import LogPParams
from repro.schedule.columnar import materialize_sends
from repro.schedule.implicit import (
    implicit_broadcast,
    implicit_reduction,
)
from repro.schedule.ops import Schedule
from repro.schedule.serialize import schedule_to_json
from repro.sim.validate import violations
from repro.sim.validate_np import violations_np_implicit


@st.composite
def _plans(draw, max_P=48):
    """A random implicit plan on a random small machine."""
    g = draw(st.integers(1, 4))
    params = LogPParams(
        P=draw(st.integers(1, max_P)),
        L=draw(st.integers(1, 6)),
        o=draw(st.integers(0, min(3, g))),
        g=g,
    )
    family = draw(st.sampled_from(["optimal", "binomial"]))
    build = draw(st.sampled_from([implicit_broadcast, implicit_reduction]))
    return build(params, family=family)


@st.composite
def _rewritten_plans(draw):
    """A plan plus an optional shift and rank swap (exercises offset and
    mapping composition on every downstream property)."""
    impl = draw(_plans(max_P=24))
    impl = impl.shifted(draw(st.integers(0, 9)))
    if impl.family.P >= 2 and draw(st.booleans()):
        a = draw(st.integers(0, impl.family.P - 1))
        b = draw(st.integers(0, impl.family.P - 1))
        if a != b:
            impl = impl.remapped({a: b, b: a})
    return impl


class TestChunkedMaterialization:
    @given(impl=_rewritten_plans(), max_sends=st.integers(1, 70))
    @settings(max_examples=120, deadline=None)
    def test_chunk_concat_is_byte_identical_to_materialize(
        self, impl, max_sends
    ):
        rows = []
        for cols in impl.iter_chunks(max_sends=max_sends):
            assert len(cols) <= max_sends
            rows.extend(materialize_sends(cols))
        streamed = Schedule(
            params=impl.params,
            sends=rows,
            initial=impl.initial_placement(),
            source_items=impl.source_items(),
        )
        assert schedule_to_json(streamed) == schedule_to_json(
            impl.materialize()
        )

    @given(impl=_plans())
    @settings(max_examples=60, deadline=None)
    def test_materialized_plan_is_legal(self, impl):
        assert violations(impl.materialize()) == []

    @given(impl=_rewritten_plans(), max_sends=st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_chunked_validator_is_clean_on_legal_plans(self, impl, max_sends):
        assert violations_np_implicit(impl, max_sends=max_sends) == []


class TestQueryAgreement:
    @given(impl=_rewritten_plans())
    @settings(max_examples=80, deadline=None)
    def test_sends_of_and_parent_agree_with_realized_schedule(self, impl):
        realized = impl.materialize()
        by_src: dict[int, list] = {}
        for op in realized.sends:
            by_src.setdefault(op.src, []).append(op)
        labels = set(by_src) | set(range(impl.num_procs))
        for proc in labels:
            cols = impl.sends_of(proc)
            mine = sorted(
                (op.time, op.dst, op.item) for op in by_src.get(proc, [])
            )
            ours = sorted(
                (op.time, op.dst, op.item) for op in materialize_sends(cols)
            )
            assert ours == mine
        # every non-source participant names the src of its unique edge
        if not impl.is_reduction:
            by_dst = {op.dst: op.src for op in realized.sends}
            for dst, src in by_dst.items():
                assert impl.parent(dst) == src
        else:
            for op in realized.sends:
                assert impl.parent(op.src, item=op.item) == op.dst

    @given(impl=_rewritten_plans())
    @settings(max_examples=40, deadline=None)
    def test_scalar_properties_match_materialized(self, impl):
        realized = impl.materialize()
        assert len(realized.sends) == impl.num_sends
        if impl.num_sends:
            times = [op.time for op in realized.sends]
            arrivals = [op.arrival(impl.params) for op in realized.sends]
            assert min(times) == impl.start_time
            assert max(arrivals) == impl.completion_time
            assert max(arrivals) - min(times) == impl.makespan


class TestLintAgreement:
    @given(impl=_plans(max_P=32), max_sends=st.integers(1, 50))
    @settings(max_examples=60, deadline=None)
    def test_totals_match_full_engine_on_shared_rules(self, impl, max_sends):
        chunked = lint_implicit(impl, max_sends=max_sends)
        full = lint_schedule(impl.materialize())
        if impl.num_sends and not (impl.is_reduction and impl.family.P == 2):
            # exemptions: a zero-send plan materializes to Schedule's
            # falsy-initial default, and a P=2 reduction is one item
            # moving 1->0 — detect_workload rightly calls it a broadcast
            assert chunked.workload == full.workload
        assert chunked.num_sends == full.num_sends
        for rule_id in chunked.rules_run:
            if rule_id in full.rule_totals:
                assert (
                    chunked.rule_totals[rule_id] == full.rule_totals[rule_id]
                ), rule_id
        ours = sorted(d.message for d in chunked.diagnostics)
        theirs = sorted(
            d.message
            for d in full.diagnostics
            if d.rule in chunked.rule_totals
        )
        assert ours == theirs
