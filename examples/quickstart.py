#!/usr/bin/env python3
"""Quickstart: optimal collectives on a LogP machine in ten lines each.

Walks the core API end to end: describe a machine, build the optimal
single-item broadcast, validate it on the simulator, inspect the tree
and the timeline, then do the same for k-item broadcast and summation.

Run:  python examples/quickstart.py
"""

from repro import (
    LogPParams,
    broadcast_time,
    kitem_upper_bound,
    min_summation_time,
    optimal_broadcast_schedule,
    optimal_tree,
    replay,
    single_sending_schedule,
    summation_schedule,
    verify_summation,
)
from repro.schedule.analysis import broadcast_delay_per_proc, item_completion_times
from repro.viz.ascii import render_schedule_activity, render_tree


def main() -> None:
    # --- 1. describe your machine (the paper's Figure 1 parameters) -----
    machine = LogPParams(P=8, L=6, o=2, g=4)
    print(f"machine: {machine}")
    print(f"optimal broadcast time B(P) = {broadcast_time(machine.P, machine)} cycles")

    # --- 2. build and validate the optimal broadcast --------------------
    schedule = optimal_broadcast_schedule(machine)
    replay(schedule)  # raises if any LogP rule is violated
    delays = broadcast_delay_per_proc(schedule)
    print(f"per-processor arrival times: {dict(sorted(delays.items()))}")

    # --- 3. look inside ---------------------------------------------------
    print("\nthe optimal broadcast tree (not binomial!):")
    print(render_tree(optimal_tree(machine)))
    print("\nactivity timeline (s = send overhead, r = receive overhead):")
    print(render_schedule_activity(schedule))

    # --- 4. k-item broadcast (postal model) ------------------------------
    P, L, k = 10, 3, 8
    kitem = single_sending_schedule(k, P, L)
    replay(kitem)
    done = max(item_completion_times(kitem, set(range(P))).values())
    print(f"\nbroadcasting k={k} items to P={P} (L={L}): {done} steps "
          f"(Theorem 3.6 guarantees <= {kitem_upper_bound(P, L, k)})")

    # --- 5. optimal summation --------------------------------------------
    n = 79
    t = min_summation_time(n, LogPParams(P=8, L=5, o=2, g=4))
    plan = summation_schedule(t, LogPParams(P=8, L=5, o=2, g=4))
    total = verify_summation(plan)
    print(f"\nsumming n={n} operands on 8 processors: {t} cycles "
          f"(functionally verified: total = {total})")


if __name__ == "__main__":
    main()
