"""Regeneration of every figure in the paper.

One function per figure; each returns a :class:`FigureResult` carrying
the rendered text artifact plus the measured numbers that EXPERIMENTS.md
records (paper value vs measured value).  The benchmark suite calls these
and asserts the claims; the functions are also directly runnable::

    python -m repro.experiments.figures        # print all six figures
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.continuous.assignment import solve_instance
from repro.core.continuous.relative import instance_for, step_multiset
from repro.core.continuous.schedule import expand_assignment
from repro.core.continuous.words import word_automaton, word_to_str
from repro.core.fib import broadcast_time, broadcast_time_postal
from repro.core.kitem.blocks import block_layout, block_transmission_digraph
from repro.core.kitem.buffered import buffered_schedule
from repro.core.kitem.bounds import (
    continuous_based_time,
    kitem_lower_bound,
    single_sending_lower_bound,
)
from repro.core.kitem.single_sending import continuous_based_schedule, single_sending_schedule
from repro.core.single_item import optimal_broadcast_schedule
from repro.core.summation.capacity import summation_capacity
from repro.core.summation.schedule import summation_schedule, verify_summation
from repro.core.tree import optimal_tree, tree_for_time
from repro.params import LogPParams, postal
from repro.schedule.analysis import item_completion_times, item_delays
from repro.sim.machine import replay
from repro.viz.ascii import render_schedule_activity, render_tree
from repro.viz.digraph import render_digraph
from repro.viz.tables import (
    buffered_reception_table,
    reception_table,
    render_reception_table,
)

__all__ = [
    "FigureResult",
    "fig1_single_item",
    "fig2_continuous",
    "fig3_digraph",
    "fig4_reception_table",
    "fig5_buffered",
    "fig6_summation",
    "all_figures",
]


@dataclass
class FigureResult:
    """A regenerated paper artifact."""

    figure: str
    description: str
    text: str
    measured: dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        header = f"=== {self.figure}: {self.description} ==="
        facts = "\n".join(f"  {k} = {v}" for k, v in self.measured.items())
        return f"{header}\n{facts}\n\n{self.text}\n"


def fig1_single_item() -> FigureResult:
    """Figure 1: optimal broadcast tree and activity, P=8, L=6, g=4, o=2."""
    machine = LogPParams(P=8, L=6, o=2, g=4)
    tree = optimal_tree(machine)
    schedule = optimal_broadcast_schedule(machine)
    replay(schedule)
    text = render_tree(tree) + "\n\n" + render_schedule_activity(schedule)
    return FigureResult(
        figure="Figure 1",
        description="optimal broadcast tree for P=8, L=6, g=4, o=2",
        text=text,
        measured={
            "B(P)": tree.completion_time,
            "paper_B(P)": 24,
            "node_delays": sorted(tree.delays()),
        },
    )


def fig2_continuous() -> FigureResult:
    """Figure 2: T9, the per-step multiset, the automaton, the continuous
    schedule, and the k=8 broadcast schedule (P=10, L=3)."""
    t, L, k = 7, 3, 8
    tree = tree_for_time(t, postal(P=1, L=L))
    multiset = step_multiset(t, L)
    assignment = solve_instance(instance_for(t, L))
    assert assignment is not None
    continuous = expand_assignment(assignment, num_items=k)
    replay(continuous)
    delays = item_delays(continuous, procs=set(range(1, 10)))

    auto = word_automaton(L)
    auto_text = "automaton states: " + ", ".join(
        ("*" if auto.nodes[s]["start"] else "") + auto.nodes[s]["label"]
        for s in sorted(auto.nodes)
    )

    kitem = continuous_based_schedule(k, t, L)
    assert kitem is not None
    completion = max(item_completion_times(kitem, set(range(10))).values())

    table = render_reception_table(reception_table(continuous))
    text = "\n\n".join(
        [
            "T9 (optimal 7-step tree, L=3):\n" + render_tree(tree),
            f"per-step reception multiset S = {multiset.letters()}",
            auto_text,
            f"block-cyclic solution: {assignment.describe()}",
            "continuous broadcast receiving pattern (items 0..7):\n" + table,
        ]
    )
    return FigureResult(
        figure="Figure 2",
        description="continuous + k-item broadcast, P=10, L=3, k=8",
        text=text,
        measured={
            "item_delay": sorted(set(delays.values())),
            "paper_item_delay": [10],  # L + B(P-1) = 3 + 7
            "k8_completion": completion,
            "paper_k8_completion": 17,  # L + B + k - 1
            "kitem_lower_bound": kitem_lower_bound(10, L, k),  # 15 (Thm 3.1)
            "paper_S7": ["a", "a", "a", "b", "b", "c", "D1", "E2", "H5"],
            "measured_S7": multiset.letters(),
        },
    )


def fig3_digraph() -> FigureResult:
    """Figure 3: block transmission digraph, L=3, P-1 = P(11) = 41."""
    t, L = 11, 3
    layout = block_layout(t, L)
    graph = block_transmission_digraph(t, L)
    return FigureResult(
        figure="Figure 3",
        description="block transmission digraph for L=3, P-1=P(11)=41",
        text=render_digraph(graph),
        measured={
            "P_minus_1": layout.P_minus_1,
            "paper_P_minus_1": 41,
            "block_sizes": sorted(layout.blocks, reverse=True),
            "flow_conserved": True,  # the builder validates in == out == r
        },
    )


def fig4_reception_table() -> FigureResult:
    """Figure 4: reception table of a block of size 7, L=5, k=16.

    The paper hand-crafts the within-block reception scheme of Theorem
    3.7 case 2; we extract the equivalent table from our machine-checked
    single-sending schedule for the machine whose optimal tree has a
    7-block (L=5, P-1 = P(11) = 11, whose root is the size-7 block).
    """
    L, k = 5, 16
    P = 12  # P - 1 = P(11) = 11 for L=5; root block has size 7
    schedule = single_sending_schedule(k, P, L)
    replay(schedule)
    completion = max(item_completion_times(schedule, set(range(P))).values())

    # identify the 7 processors that take the root (degree-7) duty: they
    # are the processors that *send* most often
    send_counts: dict[int, int] = {}
    for op in schedule.sends:
        if op.src != 0:
            send_counts[op.src] = send_counts.get(op.src, 0) + 1
    block = sorted(send_counts, key=lambda p: -send_counts[p])[:7]

    actives = {
        (op.dst, op.item)
        for op in schedule.sends
        if op.src == 0 or _is_internal_reception(schedule, op)
    }
    table = reception_table(schedule, actives=actives)
    text = render_reception_table(table, procs=sorted(block))
    return FigureResult(
        figure="Figure 4",
        description="reception table of the size-7 block, L=5, k=16",
        text=text,
        measured={
            "completion": completion,
            "single_sending_lower_bound": single_sending_lower_bound(P, L, k),
            "paper_bound_B+2L+k-2": broadcast_time_postal(P - 1, L) + 2 * L + k - 2,
            "block": sorted(block),
        },
    )


def _is_internal_reception(schedule, op) -> bool:
    """A reception is 'active' if the receiver later relays the item."""
    return any(
        later.src == op.dst and later.item == op.item for later in schedule.sends
    )


def fig5_buffered() -> FigureResult:
    """Figure 5: buffered-model optimal schedule, L=3, P-1=13, k=14."""
    k, t, L = 14, 8, 3
    schedule = buffered_schedule(k, t, L)
    schedule.validate()
    table = render_reception_table(buffered_reception_table(schedule))
    return FigureResult(
        figure="Figure 5",
        description="buffered-model schedule, L=3, P-1=13, k=14",
        text=table,
        measured={
            "completion": schedule.completion,
            "paper_completion": 24,  # B + L + k - 1 = 8 + 3 + 13
            "buffer_peak": schedule.buffer_peak,
            "paper_buffer_bound": 2,
            "delayed_receptions": len(schedule.delayed_items()),
        },
    )


def fig6_summation() -> FigureResult:
    """Figure 6: optimal summation, t=28, P=8, L=5, g=4, o=2."""
    machine = LogPParams(P=8, L=5, o=2, g=4)
    t = 28
    plan = summation_schedule(t, machine)
    total = verify_summation(plan)
    replay(plan.to_schedule())
    text = (
        "communication tree (time-reversed broadcast for L+1=6):\n"
        + render_tree(plan.tree)
        + "\n\ncomputation + communication activity:\n"
        + render_schedule_activity(plan.to_schedule())
    )
    return FigureResult(
        figure="Figure 6",
        description="optimal summation with t=28, P=8, L=5, g=4, o=2",
        text=text,
        measured={
            "n(t)": plan.n,
            "capacity_formula": summation_capacity(t, machine),
            "verified_total": total == plan.total(),
            "operands_per_proc": [len(ops) for ops in plan.operands],
        },
    )


def all_figures() -> list[FigureResult]:
    """Regenerate every figure in order."""
    return [
        fig1_single_item(),
        fig2_continuous(),
        fig3_digraph(),
        fig4_reception_table(),
        fig5_buffered(),
        fig6_summation(),
    ]


if __name__ == "__main__":  # pragma: no cover
    for result in all_figures():
        print(result)
