# repro: profile=hot,keying,cli
"""Benign lookalikes: every profiled rule applies here; none may fire."""

import json
import threading
from functools import lru_cache

CANONICAL_DUMPS = {"sort_keys": True, "separators": (",", ":")}


@lru_cache(maxsize=512)
def bounded(n):
    return n * n


def columnar_total(cols):
    return int(cols.times.sum())


def loops_over_reduced(times):
    return [t + 1 for t in times]


def canonical_key(payload):
    return json.dumps(payload, **CANONICAL_DUMPS)


def sorted_items_key(items):
    return json.dumps({"items": sorted(items)}, **CANONICAL_DUMPS)


class Guarded:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def record(self):
        with self._lock:
            self.hits += 1


def fail(reason):
    raise ValueError(f"bad input: {reason}")
