"""Tests for schedule analysis (availability, completion, delays)."""

import pytest

from repro.params import LogPParams, postal
from repro.schedule.analysis import (
    availability,
    broadcast_delay_per_proc,
    completion_time,
    item_completion_times,
    item_delays,
    max_delay,
)
from repro.schedule.ops import Schedule


def make_chain(P: int, L: int) -> Schedule:
    s = Schedule(params=postal(P=P, L=L))
    t = 0
    for i in range(1, P):
        s.add(time=t, src=i - 1, dst=i, item=0)
        t += L
    return s


class TestAvailability:
    def test_initial_at_zero(self):
        s = Schedule(params=postal(P=2, L=3))
        assert availability(s)[(0, 0)] == 0

    def test_chain_arrivals(self):
        s = make_chain(4, 3)
        av = availability(s)
        assert av[(1, 0)] == 3 and av[(2, 0)] == 6 and av[(3, 0)] == 9

    def test_earliest_arrival_wins(self):
        s = Schedule(params=postal(P=3, L=2))
        s.add(time=0, src=0, dst=2, item=0)
        s.add(time=5, src=0, dst=2, item=0)
        assert availability(s)[(2, 0)] == 2

    def test_source_item_creation_time(self):
        s = Schedule(params=postal(P=2, L=1), source_items={0: 4})
        assert availability(s)[(0, 0)] == 4

    def test_overhead_included(self):
        p = LogPParams(P=2, L=6, o=2, g=4)
        s = Schedule(params=p)
        s.add(time=0, src=0, dst=1, item=0)
        assert availability(s)[(1, 0)] == 10  # L + 2o


class TestCompletion:
    def test_empty(self):
        assert completion_time(Schedule(params=postal(P=2, L=1))) == 0

    def test_chain(self):
        assert completion_time(make_chain(5, 2)) == 8

    def test_item_completion_requires_all_procs(self):
        s = Schedule(params=postal(P=3, L=1))
        s.add(time=0, src=0, dst=1, item=0)
        with pytest.raises(ValueError):
            item_completion_times(s, procs={0, 1, 2})
        assert item_completion_times(s, procs={0, 1}) == {0: 1}


class TestDelays:
    def test_delay_subtracts_creation(self):
        s = Schedule(params=postal(P=2, L=3), initial={0: {0, 1}}, source_items={0: 0, 1: 5})
        s.add(time=0, src=0, dst=1, item=0)
        s.add(time=5, src=0, dst=1, item=1)
        d = item_delays(s, procs={1})
        assert d == {0: 3, 1: 3}
        assert max_delay(s, procs={1}) == 3

    def test_broadcast_delay_per_proc(self):
        s = make_chain(3, 4)
        d = broadcast_delay_per_proc(s)
        assert d == {0: 0, 1: 4, 2: 8}
