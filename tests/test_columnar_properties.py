"""Storage-mode equivalence (property-based).

An array-backed :class:`~repro.schedule.ops.Schedule` built via
``Schedule.from_arrays`` must be observationally identical to an
object-backed twin holding the same sends: *byte-identical* violation
strings (in the same order, not merely the same multiset) from both the
scalar and the vectorized validator, identical JSON serialization, and
identical serialize round-trips — on legal and hostile schedules alike.

The array twin's :class:`ItemTable` is interned in a *shuffled* order,
so its integer item codes differ from the natural encounter order.  Any
output that leaked the internal codes (instead of the decoded items)
would fail these properties.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.all_to_all import (
    all_to_all_personalized_schedule,
    all_to_all_schedule,
    k_item_all_to_all_schedule,
)
from repro.params import LogPParams, postal
from repro.schedule.columnar import ItemTable
from repro.schedule.ops import Schedule
from repro.schedule.serialize import schedule_from_json, schedule_to_json
from repro.sim.validate import violations
from repro.sim.validate_np import violations_np

# deliberately unorderable mix: int < tuple raises TypeError, so any
# code path that sorts raw items (rather than (time, src, dst) keys or
# interned codes) blows up on these schedules
_ITEM_POOL = [0, 1, ("blk", 0), ("blk", 1, 2)]


@st.composite
def _twin_schedules(draw):
    """A fuzzed (mostly illegal) schedule as (object-backed, array-backed)."""
    g = draw(st.integers(1, 4))
    params = LogPParams(
        P=draw(st.integers(2, 7)),
        L=draw(st.integers(1, 6)),
        o=draw(st.integers(0, min(3, g))),
        g=g,
    )
    initial: dict[int, set] = {}
    for item in _ITEM_POOL:
        if draw(st.booleans()):
            initial.setdefault(draw(st.integers(0, params.P - 1)), set()).add(item)
    initial = initial or {0: {_ITEM_POOL[0]}}

    n_sends = draw(st.integers(0, 12))
    rows = [
        (
            draw(st.integers(0, 15)),
            draw(st.integers(0, params.P - 1)),
            draw(st.integers(0, params.P - 1)),
            draw(st.integers(0, len(_ITEM_POOL) - 1)),
        )
        for _ in range(n_sends)
    ]

    obj = Schedule(params=params, initial={p: set(s) for p, s in initial.items()})
    for t, src, dst, idx in rows:
        obj.add(time=t, src=src, dst=dst, item=_ITEM_POOL[idx])

    # intern the pool in a drawn permutation so the array twin's codes
    # differ from the object twin's encounter order
    perm = draw(st.permutations(range(len(_ITEM_POOL))))
    table = ItemTable(_ITEM_POOL[i] for i in perm)
    arr = Schedule.from_arrays(
        params,
        np.array([r[0] for r in rows], dtype=np.int64),
        np.array([r[1] for r in rows], dtype=np.int64),
        np.array([r[2] for r in rows], dtype=np.int64),
        item_codes=np.array(
            [table.intern(_ITEM_POOL[r[3]]) for r in rows], dtype=np.int64
        ),
        item_table=table,
        initial={p: set(s) for p, s in initial.items()},
    )
    return obj, arr


class TestHostileTwins:
    @given(twins=_twin_schedules())
    @settings(max_examples=150, deadline=None)
    def test_scalar_violations_byte_identical(self, twins):
        obj, arr = twins
        assert violations(obj, force_scalar=True) == violations(
            arr, force_scalar=True
        )

    @given(twins=_twin_schedules())
    @settings(max_examples=150, deadline=None)
    def test_vectorized_violations_byte_identical(self, twins):
        obj, arr = twins
        assert violations_np(obj) == violations_np(arr)

    @given(twins=_twin_schedules())
    @settings(max_examples=100, deadline=None)
    def test_serialization_byte_identical(self, twins):
        obj, arr = twins
        assert schedule_to_json(obj) == schedule_to_json(arr)

    @given(twins=_twin_schedules())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_fixed_point(self, twins):
        _, arr = twins
        text = schedule_to_json(arr)
        restored = schedule_from_json(text)
        assert schedule_to_json(restored) == text
        assert restored.sorted_sends() == arr.sorted_sends()
        assert restored.initial == arr.initial
        assert restored.params == arr.params


class TestLegalBuilders:
    """The columnar builders vs their object-path oracles, end to end."""

    @given(P=st.integers(2, 20), L=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_all_to_all(self, P, L):
        params = postal(P=P, L=L)
        fast = all_to_all_schedule(params)
        oracle = all_to_all_schedule(params, backend="objects")
        assert violations(fast, force_scalar=True) == []
        assert violations_np(fast) == []
        assert schedule_to_json(fast) == schedule_to_json(oracle)

    @given(P=st.integers(2, 14), L=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_personalized(self, P, L):
        params = postal(P=P, L=L)
        fast = all_to_all_personalized_schedule(params)
        oracle = all_to_all_personalized_schedule(params, backend="objects")
        assert fast.sends == oracle.sends
        assert schedule_to_json(fast) == schedule_to_json(oracle)

    @given(P=st.integers(2, 10), L=st.integers(1, 4), k=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_kitem(self, P, L, k):
        params = postal(P=P, L=L)
        fast = k_item_all_to_all_schedule(params, k)
        oracle = k_item_all_to_all_schedule(params, k, backend="objects")
        assert violations(fast, force_scalar=True) == []
        assert schedule_to_json(fast) == schedule_to_json(oracle)
