"""General word-assignment solver for arbitrary per-item trees.

This generalizes the block-cyclic machinery of Section 3.2 beyond the
unique optimal tree: given *any* per-item broadcast tree (children at
consecutive delays starting ``d + L``), one block per internal node
(size = out-degree), words over leaf *delays*, legality via the offset
collision rule plus send non-interference.  Used by

* the ``L = 2`` constructions of Theorem 3.5
  (:mod:`repro.core.continuous.l2`),
* the general single-sending k-item scheduler of Theorem 3.6
  (:mod:`repro.core.kitem.single_sending`), which searches pruned trees
  with completion up to ``B(P-1) + L - 1``.

The DFS is exhaustive unless a ``budget`` is given; with a budget it may
give up early (returning ``None``) so callers can move to the next
candidate tree.
"""

from __future__ import annotations

from collections import Counter

from repro.core.continuous.schedule import GBlock, GeneralAssignment
from repro.core.continuous.words import is_legal_general_pattern
from repro.core.tree import BroadcastTree

__all__ = ["solve_general_words"]


def solve_general_words(
    tree: BroadcastTree,
    L: int,
    budget: int | None = None,
) -> GeneralAssignment | None:
    """Solve the word-assignment problem for an arbitrary per-item tree.

    One block per internal node (size = out-degree); words are tuples of
    leaf delays; each block's cyclic pattern must pass the generalized
    legality check (offset correctness + send non-interference).  Exactly
    one leaf letter is left for the receive-only processor.

    ``budget`` bounds the number of DFS expansions; ``None`` means
    exhaustive search (so ``None`` results are proofs of infeasibility).
    """
    T = tree.completion_time
    specs: list[tuple[int, int]] = [
        (node.delay, node.out_degree) for node in tree.internal_nodes()
    ]
    specs.sort(key=lambda s: (-s[1], s[0]))
    census: Counter = Counter(n.delay for n in tree.leaves())
    leaf_delays = sorted(census)
    spent = [0]

    def words_for(spec: tuple[int, int], remaining: Counter) -> list[tuple[int, ...]]:
        upper_delay, size = spec
        results: list[tuple[int, ...]] = []

        n = size
        offs: list[int] = [T - upper_delay]  # phase-0 uppercase offset

        def new_entry_ok(m_new: int) -> bool:
            """Incremental collision check for the next phase's offset.

            Only pairs involving the new entry can newly collide, so this
            is O(prefix length) rather than O(length^2).
            """
            p = len(offs)
            for j, m in enumerate(offs):
                diff = m_new - m
                if diff >= 1 and (j - p) % n == diff % n:
                    return False
                diff = m - m_new
                if diff >= 1 and (p - j) % n == diff % n:
                    return False
            return True

        def extend(prefix: list[int]) -> None:
            if len(prefix) == size - 1:
                entries = [(T - upper_delay, size)] + [(T - d, 0) for d in prefix]
                if is_legal_general_pattern(entries):
                    results.append(tuple(prefix))
                return
            for d in leaf_delays:
                if remaining[d] <= 0:
                    continue
                if budget is not None:
                    # each letter probe costs O(prefix) in new_entry_ok, so
                    # the budget charges per probe, not per tree node
                    spent[0] += 1
                    if spent[0] > budget:
                        return
                if new_entry_ok(T - d):
                    prefix.append(d)
                    offs.append(T - d)
                    remaining[d] -= 1
                    extend(prefix)
                    remaining[d] += 1
                    offs.pop()
                    prefix.pop()

        extend([])
        return results

    failed: set[tuple[int, tuple[int, ...]]] = set()

    def state_key(index: int, remaining: Counter) -> tuple[int, tuple[int, ...]]:
        return (index, tuple(remaining[d] for d in leaf_delays))

    chosen: list[tuple[int, ...]] = []

    def dfs(index: int, remaining: Counter) -> bool:
        if index == len(specs):
            return sum(remaining.values()) == 1
        if budget is not None:
            spent[0] += 1
            if spent[0] > budget:
                return False
        state = state_key(index, remaining)
        if state in failed:
            return False
        prev = (
            chosen[index - 1]
            if index > 0 and specs[index - 1] == specs[index]
            else None
        )
        for word in words_for(specs[index], remaining):
            if prev is not None and word > prev:
                continue  # symmetry breaking among identical blocks
            for d in word:
                remaining[d] -= 1
            chosen.append(word)
            if dfs(index + 1, remaining):
                return True
            chosen.pop()
            for d in word:
                remaining[d] += 1
        failed.add(state)
        return False

    if not dfs(0, census):
        return None
    # on success the dfs leaves `census` holding exactly the leftover leaf
    (receive_only,) = list(census.elements())
    blocks = [
        GBlock(upper_delay=ud, size=sz, word=w)
        for (ud, sz), w in zip(specs, chosen)
    ]
    assignment = GeneralAssignment(
        tree=tree, L=L, blocks=blocks, receive_only=(receive_only,)
    )
    assignment.validate()
    return assignment
