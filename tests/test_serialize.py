"""Tests for schedule JSON serialization."""

import pytest

from repro.core.all_to_all import all_to_all_schedule
from repro.core.kitem.single_sending import single_sending_schedule
from repro.core.single_item import optimal_broadcast_schedule
from repro.params import LogPParams, postal
from repro.schedule.serialize import (
    dump_schedule,
    load_schedule,
    schedule_from_json,
    schedule_to_json,
)
from repro.sim.machine import replay


def roundtrip(schedule):
    return schedule_from_json(schedule_to_json(schedule))


class TestRoundTrip:
    def test_broadcast(self):
        s = optimal_broadcast_schedule(LogPParams(P=8, L=6, o=2, g=4))
        r = roundtrip(s)
        assert r.params == s.params
        assert r.sorted_sends() == s.sorted_sends()
        assert r.initial == s.initial
        replay(r)

    def test_kitem_with_source_items(self):
        s = single_sending_schedule(4, 10, 3)
        r = roundtrip(s)
        assert r.source_items == s.source_items
        assert r.sorted_sends() == s.sorted_sends()

    def test_tuple_items(self):
        s = all_to_all_schedule(postal(P=4, L=2))
        r = roundtrip(s)
        assert {op.item for op in r.sends} == {op.item for op in s.sends}
        replay(r)

    def test_file_io(self, tmp_path):
        s = optimal_broadcast_schedule(postal(P=5, L=2))
        path = tmp_path / "plan.json"
        dump_schedule(s, str(path))
        r = load_schedule(str(path))
        assert r.sorted_sends() == s.sorted_sends()

    def test_format_checked(self):
        with pytest.raises(ValueError, match="unsupported format"):
            schedule_from_json('{"format": "something-else"}')

    def test_unserializable_item_rejected(self):
        from repro.schedule.ops import Schedule

        s = Schedule(params=postal(P=2, L=1), initial={0: {object()}})
        with pytest.raises(TypeError):
            schedule_to_json(s)


class TestSerializeProperty:
    def test_roundtrip_property(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(P=st.integers(2, 20), L=st.integers(1, 5))
        @settings(max_examples=25, deadline=None)
        def check(P, L):
            s = optimal_broadcast_schedule(postal(P=P, L=L))
            r = roundtrip(s)
            assert r.sorted_sends() == s.sorted_sends()
            assert r.params == s.params

        check()

    def test_frozenset_items(self):
        from repro.schedule.ops import Schedule

        s = Schedule(
            params=postal(P=3, L=2),
            initial={0: {frozenset({1, 2})}},
        )
        s.add(0, 0, 1, item=frozenset({1, 2}))
        r = roundtrip(s)
        assert r.initial == s.initial
