"""CMP: optimal schedules vs the baselines a practitioner would use.

The paper's implicit evaluation: the universal-tree broadcast beats the
classic tree shapes on machines where ``L + 2o != g`` (Figure 1's machine:
24 vs binomial's 30), and pipelined k-item broadcast turns ``k * B(P)``
into ``B + 2L + k - 2``.  These benchmarks print the comparison tables
and assert the orderings.
"""

from repro.core.fib import broadcast_time
from repro.experiments.sweeps import broadcast_vs_baselines, kitem_bounds_sweep
from repro.params import postal


def test_single_item_vs_baselines(benchmark):
    rows = benchmark(broadcast_vs_baselines)
    for row in rows:
        for name in ("flat", "chain", "binary", "binomial"):
            assert row[name] >= row["optimal"], row
    fig1 = next(row for row in rows if (row["P"], row["L"]) == (8, 6))
    assert fig1["optimal"] == 24 and fig1["binomial"] == 30
    print("\nP  L  o  g  optimal  flat  chain  binary  binomial")
    for row in rows:
        print(
            f"{row['P']:<3}{row['L']:<3}{row['o']:<3}{row['g']:<3}"
            f"{row['optimal']:<9}{row['flat']:<6}{row['chain']:<7}"
            f"{row['binary']:<8}{row['binomial']}"
        )


def test_kitem_pipelining_win(benchmark):
    rows = benchmark(lambda: kitem_bounds_sweep(Ls=(2, 3), Ps=(5, 10, 22), k=12))
    print("\nL  P   k   LB   ours  UB(3.6)  repeated  stag-binomial")
    for row in rows:
        print(
            f"{row['L']:<3}{row['P']:<4}{row['k']:<4}{row['lower_bound']:<5}"
            f"{row['ours']:<6}{row['upper_bound_thm36']:<9}"
            f"{row['repeated_bcast']:<10}{row['staggered_binomial']}"
        )
        assert row["ours"] <= row["upper_bound_thm36"]
        # the asymptotic point of the paper: ours ~ B + k, naive ~ k * B
        assert row["repeated_bcast"] > 2 * row["ours"]


def test_binomial_ties_only_when_tree_degenerates(benchmark):
    def run():
        out = {}
        for P in (8, 16, 32):
            machine = postal(P=P, L=1)
            out[P] = broadcast_time(P, machine)
        return out

    times = benchmark(run)
    # L=1 postal: the optimal tree IS binomial -> B(P) = ceil(log2 P)
    assert times == {8: 3, 16: 4, 32: 5}


def test_network_utilization(benchmark):
    """The optimal tree saturates the source's egress capacity; the classic
    shapes leave network bandwidth idle — the mechanistic reason they lose."""
    import numpy as np

    from repro.baselines.trees import baseline_broadcast
    from repro.core.single_item import optimal_broadcast_schedule
    from repro.params import postal
    from repro.schedule.analysis_np import columns, in_transit_profile

    params = postal(P=60, L=4)

    def run():
        out = {}
        for name in ("optimal", "binomial", "binary"):
            schedule = (
                optimal_broadcast_schedule(params)
                if name == "optimal"
                else baseline_broadcast(name, params)
            )
            profile = in_transit_profile(columns(schedule), L=params.L)
            out[name] = (
                int(profile.max()),
                float(profile.mean()),
                len(profile) - 1,
            )
        return out

    stats = benchmark(run)
    print("\ntree      peak-in-flight  mean-in-flight  horizon")
    for name, (peak, mean, horizon) in stats.items():
        print(f"{name:<10}{peak:<16}{mean:<16.1f}{horizon}")
    # the optimal schedule finishes first and keeps more messages in the air
    assert stats["optimal"][2] <= stats["binomial"][2]
    assert stats["optimal"][1] >= stats["binary"][1] * 0.9
