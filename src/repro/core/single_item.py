"""Single-item broadcast (Section 2).

Builds the optimal schedule of Theorem 2.1 from the universal broadcast
tree: processor ``i`` is assigned to tree node ``i`` (the root / source is
processor 0), and a node with delay ``d`` and children at delays
``d + j*g + L + 2o`` starts its ``j``-th send at cycle ``d + j*g``.

The schedule's running time equals ``B(P; L, o, g)`` by construction, and
:func:`repro.sim.machine.replay` verifies it is a legal LogP execution.
"""

from __future__ import annotations

from repro.core.fib import broadcast_time
from repro.core.tree import BroadcastTree, optimal_tree
from repro.params import LogPParams
from repro.schedule.ops import Schedule

__all__ = [
    "schedule_from_tree",
    "optimal_broadcast_schedule",
    "optimal_broadcast_time",
]


def schedule_from_tree(
    tree: BroadcastTree,
    item: object = 0,
    start_time: int = 0,
    proc_map: dict[int, int] | None = None,
) -> Schedule:
    """Expand a broadcast tree into an explicit schedule.

    Parameters
    ----------
    tree:
        Any :class:`BroadcastTree` (optimal or not — baselines reuse this).
    item:
        The datum's identity in the emitted ops.
    start_time:
        Cycle at which the root first holds the item (delays shift by it).
    proc_map:
        Optional map from tree-node index to physical processor id;
        defaults to the identity.
    """
    params = tree.params
    g = params.g
    proc = (lambda i: i) if proc_map is None else (lambda i: proc_map[i])
    schedule = Schedule(
        params=params,
        initial={proc(0): {item}},
        source_items={item: start_time},
    )
    for node in tree.nodes:
        for j, child in enumerate(node.children):
            schedule.add(
                time=start_time + node.delay + j * g,
                src=proc(node.index),
                dst=proc(child),
                item=item,
            )
    return schedule


def optimal_broadcast_schedule(params: LogPParams) -> Schedule:
    """The optimal single-item broadcast schedule ``B(P)`` (Theorem 2.1)."""
    return schedule_from_tree(optimal_tree(params))


def optimal_broadcast_time(params: LogPParams) -> int:
    """``B(P; L, o, g)``, the single-item broadcast complexity."""
    return broadcast_time(params.P, params)
