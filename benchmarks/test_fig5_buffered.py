"""FIG5: buffered-model optimal k-item broadcast, L=3, P-1=13, k=14 (Fig 5).

Theorem 3.8: with a 2-slot input buffer the single-sending lower bound
B + L + k - 1 = 24 is achievable.  The regenerated reception table marks
active items (parentheses — the paper's circles) and buffer-delayed
items (brackets — the paper's boxes).
"""

from repro.experiments.figures import fig5_buffered


def test_fig5(benchmark):
    result = benchmark(fig5_buffered)
    m = result.measured
    assert m["completion"] == m["paper_completion"] == 24
    assert m["buffer_peak"] <= m["paper_buffer_bound"] == 2
    assert m["delayed_receptions"] > 0
    print()
    print(result)
