"""Fault-aware replanning: heal_columns, HealPass, and the chaos suite.

Covers the PR-10 repair story end to end: the two-stage heal kernel on
flat and hierarchical machines, the registered ``heal`` pass inside
``opt`` pipelines (the restrict -> coverage-loss -> heal regression),
and a Hypothesis chaos suite that kills random rank sets and asserts
the healed schedule always covers the survivors, lints clean on the
structural rules, and respects the re-verified completion bound.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import registry
from repro.analyze import Severity, lint_schedule
from repro.machine import (
    FaultMaskedMachine,
    HierarchicalMachine,
    HealStats,
    heal_columns,
)
from repro.params import LogPParams
from repro.sim.validate_np import violations_np

INTER = LogPParams(P=4, L=8, o=1, g=3)
INTRA = LogPParams(P=4, L=2, o=0, g=1)
HIER = HierarchicalMachine(nodes=4, cores=4, inter=INTER, intra=INTRA)

STRUCTURAL_RULES = ["SCHED001", "SCHED002", "SCHED003", "SCHED004", "SCHED005"]


def assert_structurally_clean(schedule):
    report = lint_schedule(schedule, select=STRUCTURAL_RULES)
    assert report.at_least(Severity.WARNING) == [], [
        d.message for d in report.at_least(Severity.WARNING)
    ]


def informed_set(schedule):
    cols = schedule.columns()
    informed = {
        proc for proc, items in schedule.initial.items() if items
    }
    informed.update(cols.dsts.tolist())
    return informed


class TestHealColumns:
    def test_intact_schedule_is_a_no_op(self):
        schedule = registry.plan("broadcast", P=8, L=6, o=2, g=4)
        healed, stats = heal_columns(schedule)
        assert stats == HealStats(
            dropped_sends=0,
            healed_sends=0,
            uncovered_before=0,
            uncovered_after=0,
            makespan_before=stats.makespan_before,
            makespan_after=stats.makespan_before,
            completion_bound=stats.makespan_before,
        )
        assert healed.num_sends == schedule.num_sends

    def test_reinforms_subtree_after_internal_rank_removed(self):
        # rank 1 is the busiest forwarder of the P=16 optimal broadcast;
        # removing it orphans its whole subtree
        schedule = registry.plan("broadcast", P=16, L=6, o=2, g=4)
        survivors = set(range(16)) - {1}
        healed, stats = heal_columns(schedule, procs=survivors)
        assert stats.uncovered_before > 0
        assert stats.uncovered_after == 0
        assert informed_set(healed) == survivors
        assert violations_np(healed) == []
        assert_structurally_clean(healed)
        # the closed form over 15 survivors is re-verified and respected
        assert stats.completion_bound is not None
        assert stats.makespan_after >= stats.completion_bound

    def test_fault_masked_machine_supplies_the_survivor_set(self):
        machine = FaultMaskedMachine(base=HIER, dead=(5, 10))
        schedule = registry.plan("hier-bcast", machine=machine)
        healed, stats = heal_columns(schedule)
        assert stats.dropped_sends > 0
        assert stats.uncovered_after == 0
        assert informed_set(healed) == set(range(16)) - {5, 10}
        assert violations_np(healed) == []
        # hierarchical pricing has no flat closed form to hold heal to
        assert stats.completion_bound is None

    def test_dead_leader_orphans_whole_node(self):
        machine = FaultMaskedMachine(base=HIER, dead=(4,))  # node 1 leader
        schedule = registry.plan("hier-bcast", machine=machine)
        healed, stats = heal_columns(schedule)
        # the leader's intra fan-out (3 sends) and its incoming inter
        # send all die; the node's 3 surviving cores must be re-informed
        assert stats.uncovered_before == 3
        assert stats.uncovered_after == 0
        assert violations_np(healed) == []
        assert_structurally_clean(healed)

    def test_root_must_survive(self):
        schedule = registry.plan("broadcast", P=8, L=6, o=2, g=4)
        with pytest.raises(ValueError, match="root"):
            heal_columns(schedule, procs={1, 2, 3})

    def test_out_of_range_survivors_rejected(self):
        schedule = registry.plan("broadcast", P=8, L=6, o=2, g=4)
        with pytest.raises(ValueError, match="survivor ranks"):
            heal_columns(schedule, procs={0, 99})

    def test_multi_item_schedules_rejected(self):
        schedule = registry.plan("kitem", P=5, L=3, k=4)
        with pytest.raises(ValueError, match="single-item"):
            heal_columns(schedule)

    def test_healed_schedule_keeps_the_machine(self):
        machine = FaultMaskedMachine(base=HIER, dead=(7,))
        schedule = registry.plan("hier-bcast", machine=machine)
        healed, _ = heal_columns(schedule)
        assert healed.machine == machine
        assert healed.is_array_backed


class TestHealPass:
    def test_registered_with_the_pass_framework(self):
        from repro.passes import pass_specs

        names = [spec.name for spec in pass_specs()]
        assert "heal" in names

    def test_restrict_then_heal_pipeline_recovers_coverage(self):
        from repro.passes import PassManager

        schedule = registry.plan("broadcast", P=16, L=6, o=2, g=4)
        survivors = "+".join(str(p) for p in range(16) if p != 1)
        broken = PassManager(
            f"restrict{{procs={survivors}}}", verify="off"
        ).run(schedule)
        report = lint_schedule(broken)
        fired = {d.rule for d in report.at_least(Severity.WARNING)}
        assert "SCHED001" in fired and "SCHED010" in fired
        healed = PassManager(
            f"restrict{{procs={survivors}}},heal{{procs={survivors}}}",
            verify="off",
        ).run(schedule)
        assert lint_schedule(healed).at_least(Severity.WARNING) == []

    def test_cli_regression_restrict_reports_loss_heal_clears_it(
        self, capsys
    ):
        # the ISSUE's satellite regression: `repro opt --pipeline
        # "restrict{...}"` reports the coverage loss, adding heal
        # clears it
        from repro.cli import main

        survivors = "+".join(str(p) for p in range(16) if p != 1)
        base = [
            "opt",
            "--builder",
            "broadcast",
            "-P",
            "16",
            "-L",
            "6",
            "--o",
            "2",
            "--g",
            "4",
            "--fail-on",
            "warning",
        ]
        rc = main(base + ["--pipeline", f"restrict{{procs={survivors}}}"])
        capsys.readouterr()
        assert rc == 1
        rc = main(
            base
            + [
                "--pipeline",
                f"restrict{{procs={survivors}}},heal{{procs={survivors}}}",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "heal" in out and "uncovered_after=0" in out

    def test_cli_run_heals_masked_plans_before_executing(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "run",
                "--builder",
                "hier-bcast",
                "--machine",
                "hier:4x4:8/1/3:2/0/1:dead=5",
                "--verify",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "executed 14 sends" in out
        assert "healed around 1 dead rank(s) 5" in out
        assert "verified" in out

    def test_cli_run_masked_reduce_rejected_with_one_liner(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "run",
                "--builder",
                "hier-reduce",
                "--machine",
                "hier:4x4:8/1/3:2/0/1:dead=5",
            ]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert "single-item broadcast" in err

    def test_heal_refuses_implicit_plans(self):
        from repro.passes import HealPass

        implicit = registry.plan(
            "broadcast", P=64, L=4, o=1, g=2, storage="implicit"
        )
        with pytest.raises(TypeError, match="materialize"):
            HealPass().run_implicit(implicit)


# -- chaos suite ---------------------------------------------------------

kill_sets = st.sets(
    st.integers(min_value=1, max_value=15), min_size=1, max_size=12
)


class TestChaos:
    @settings(max_examples=60, deadline=None)
    @given(dead=kill_sets)
    def test_random_kills_on_the_hier_machine_always_heal(self, dead):
        machine = FaultMaskedMachine(base=HIER, dead=tuple(dead))
        schedule = registry.plan("hier-bcast", machine=machine)
        healed, stats = heal_columns(schedule)
        survivors = set(range(16)) - dead
        assert stats.uncovered_after == 0
        assert informed_set(healed) == survivors
        assert violations_np(healed) == []
        assert_structurally_clean(healed)

    @settings(max_examples=60, deadline=None)
    @given(dead=kill_sets)
    def test_random_kills_on_flat_broadcast_respect_the_bound(self, dead):
        params = LogPParams(P=16, L=6, o=2, g=4)
        schedule = registry.plan("broadcast", params)
        survivors = set(range(16)) - dead
        healed, stats = heal_columns(schedule, procs=survivors)
        assert stats.uncovered_after == 0
        assert informed_set(healed) == survivors
        assert violations_np(healed) == []
        assert_structurally_clean(healed)
        # re-verified closed form over the survivor count: healing may
        # cost time but can never claim to beat the broadcast optimum
        assert stats.completion_bound is not None
        from repro.core.fib import broadcast_time

        assert stats.completion_bound == broadcast_time(
            len(survivors), params
        )
        assert stats.makespan_after >= stats.completion_bound
