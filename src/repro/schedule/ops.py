"""Schedule intermediate representation.

All algorithms in this library — the paper's optimal constructions and the
baselines alike — emit the same IR: a :class:`Schedule` holding
:class:`SendOp` records plus the machine parameters and the initial item
placement.  The simulator (:mod:`repro.sim`) replays this IR, enforcing
every LogP constraint, and the analysis helpers compute completion times
and per-item delays from it.

Two storage modes back the same interface:

* **object-backed** (the default): a plain list of frozen ``SendOp``
  dataclasses, built one :meth:`Schedule.add` at a time;
* **array-backed** (:meth:`Schedule.from_arrays`): struct-of-arrays
  ``int64`` columns from :mod:`repro.schedule.columnar`, used by the
  vectorized builders.  ``schedule.sends`` lazily materializes the
  ``SendOp`` objects on first access, so legacy consumers see no
  difference; vectorized consumers read :meth:`Schedule.columns` and
  never pay for the objects.

``columns()``, ``sorted_sends()`` and ``sends_by_proc()`` are cached and
invalidated on :meth:`add`/:meth:`extend` (or when the send count
changes), so repeated validate/analyze calls stop re-deriving them.

Timing convention (integer cycles):

* a ``SendOp`` with start time ``s`` occupies the **sender** during
  ``[s, s+o)``;
* the message is in transit during ``[s+o, s+o+L)``;
* it occupies the **receiver** during ``[s+o+L, s+o+L+o)``;
* the payload is **available** at the receiver at ``s + L + 2o``.

In the postal model (``o=0``) this degenerates to: sent at ``s``,
available at ``s + L``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator

import numpy as np

from repro.params import LogPParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analyze.diagnostics import LintReport
    from repro.machine.model import MachineModel
    from repro.schedule.columnar import ItemTable, ScheduleColumns

__all__ = ["SendOp", "ComputeOp", "Schedule"]

Item = Hashable


@dataclass(frozen=True, slots=True, order=True)
class SendOp:
    """A single point-to-point message.

    Ordering is by ``(time, src, dst)`` so sorted schedules replay in
    chronological order.
    """

    time: int
    src: int
    dst: int
    item: Item = 0

    def arrival(self, params: LogPParams) -> int:
        """Cycle at which the payload becomes available at ``dst``."""
        return self.time + params.L + 2 * params.o

    def receive_start(self, params: LogPParams) -> int:
        """Cycle at which the receive overhead begins at ``dst``."""
        return self.time + params.o + params.L


@dataclass(frozen=True, slots=True, order=True)
class ComputeOp:
    """A unit-time local computation (used by summation schedules).

    ``operands`` names the values combined and ``result`` the value
    produced; the processor is busy during ``[time, time + duration)``.
    """

    time: int
    proc: int
    result: Item = 0
    operands: tuple[Item, ...] = ()
    duration: int = 1


def _chronological(op: SendOp) -> tuple[int, int, int]:
    # sort key for replay order: (time, src, dst), ties kept in storage
    # order — total even when distinct items are not mutually orderable
    return (op.time, op.src, op.dst)


class Schedule:
    """A complete communication (and optionally computation) schedule.

    Parameters
    ----------
    params:
        The LogP machine this schedule targets.
    sends:
        All messages; need not be pre-sorted.
    initial:
        Map ``proc -> set of items`` available at time 0.  Defaults to the
        single item ``0`` at processor 0 (the classic broadcast setup).
    computes:
        Optional local-computation ops (summation schedules).
    source_items:
        For multi-item broadcasts: map ``item -> time it is created`` at
        the source.  Items default to being available at time 0.
    machine:
        Optional :class:`~repro.machine.model.MachineModel` the schedule
        targets.  ``None`` (the default) and ``FlatMachine`` both mean
        the classic flat machine described by ``params``; hierarchical
        or fault-masked machines switch arrival times, validation, and
        lint to per-edge pricing.  ``params`` stays the machine's flat
        envelope so legacy consumers keep working.
    """

    def __init__(
        self,
        params: LogPParams,
        sends: list[SendOp] | None = None,
        initial: dict[int, set[Item]] | None = None,
        computes: list[ComputeOp] | None = None,
        source_items: dict[Item, int] | None = None,
        machine: MachineModel | None = None,
    ):
        if machine is not None and machine.num_procs != params.P:
            raise ValueError(
                f"machine has {machine.num_procs} ranks but params.P is "
                f"{params.P}"
            )
        self.params = params
        self.machine = machine
        self.initial = initial if initial else {0: {0}}
        self.computes = computes if computes is not None else []
        self.source_items = source_items if source_items is not None else {}
        self._sends: list[SendOp] | None = (
            sends if isinstance(sends, list) else list(sends or [])
        )
        self._columns: ScheduleColumns | None = None
        self._sorted: list[SendOp] | None = None
        self._by_proc: dict[int, list[SendOp]] | None = None

    @classmethod
    def from_arrays(
        cls,
        params: LogPParams,
        times: np.ndarray,
        srcs: np.ndarray,
        dsts: np.ndarray,
        item_codes: np.ndarray | None = None,
        item_table: ItemTable | None = None,
        initial: dict[int, set[Item]] | None = None,
        computes: list[ComputeOp] | None = None,
        source_items: dict[Item, int] | None = None,
        machine: MachineModel | None = None,
    ) -> Schedule:
        """Build an array-backed schedule from ``int64`` column arrays.

        ``item_codes[i]`` indexes ``item_table``; omit both for the
        classic single-item (item ``0``) case.  ``SendOp`` objects are
        only created if ``schedule.sends`` is later touched.
        """
        from repro.schedule.columnar import arrays_to_columns

        schedule = cls(
            params=params,
            initial=initial,
            computes=computes,
            source_items=source_items,
            machine=machine,
        )
        schedule._sends = None
        schedule._columns = arrays_to_columns(
            params,
            times,
            srcs,
            dsts,
            item_codes,
            item_table,
            schedule.initial,
            machine=machine,
        )
        return schedule

    # -- storage ---------------------------------------------------------

    @property
    def sends(self) -> list[SendOp]:
        """The send list (lazily materialized for array-backed schedules)."""
        if self._sends is None:
            from repro.schedule.columnar import materialize_sends

            self._sends = materialize_sends(self._columns)
        return self._sends

    @sends.setter
    def sends(self, value: Iterable[SendOp]) -> None:
        self._sends = value if isinstance(value, list) else list(value)
        self._invalidate()

    @property
    def num_sends(self) -> int:
        """Send count without materializing an array-backed schedule."""
        if self._sends is None:
            return len(self._columns.times)
        return len(self._sends)

    @property
    def is_array_backed(self) -> bool:
        """True while the columns are the only storage (nothing materialized)."""
        return self._sends is None

    def columns(self) -> ScheduleColumns:
        """The cached column view consumed by the vectorized kernels.

        Array-backed schedules return their storage directly (zero-copy);
        object-backed schedules convert once and reuse the result until
        the send count changes.
        """
        if self._columns is not None and (
            self._sends is None or len(self._columns) == len(self._sends)
        ):
            return self._columns
        from repro.schedule.columnar import sends_to_columns

        self._columns = sends_to_columns(
            self._sends, self.params, self.initial, machine=self.machine
        )
        return self._columns

    def _invalidate(self) -> None:
        if self._sends is not None:
            self._columns = None
        self._sorted = None
        self._by_proc = None

    # -- mutation --------------------------------------------------------

    def add(self, time: int, src: int, dst: int, item: Item = 0) -> SendOp:
        op = SendOp(time=time, src=src, dst=dst, item=item)
        self.sends.append(op)
        self._invalidate()
        return op

    def extend(self, ops: Iterable[SendOp]) -> None:
        self.sends.extend(ops)
        self._invalidate()

    # -- derived views (cached) ------------------------------------------

    def sorted_sends(self) -> list[SendOp]:
        """Sends in replay order ``(time, src, dst)`` (cached; read-only)."""
        if self._sorted is None or len(self._sorted) != self.num_sends:
            self._sorted = sorted(self.sends, key=_chronological)
        return self._sorted

    def sends_by_proc(self) -> dict[int, list[SendOp]]:
        """Map processor -> its outgoing sends in chronological order
        (cached; treat as read-only)."""
        if self._by_proc is None or sum(
            len(ops) for ops in self._by_proc.values()
        ) != self.num_sends:
            out: dict[int, list[SendOp]] = {}
            for op in self.sorted_sends():
                out.setdefault(op.src, []).append(op)
            self._by_proc = out
        return self._by_proc

    def receives_by_proc(self) -> dict[int, list[SendOp]]:
        """Map processor -> incoming sends ordered by receive time."""
        incoming: dict[int, list[SendOp]] = {}
        for op in self.sends:
            incoming.setdefault(op.dst, []).append(op)
        for ops in incoming.values():
            ops.sort(key=lambda op: (op.receive_start(self.params), op.src))
        return incoming

    # -- queries ---------------------------------------------------------

    def items(self) -> set[Item]:
        found: set[Item] = set()
        for items in self.initial.values():
            found |= items
        if self._sends is None:
            cols = self._columns
            table = cols.table.items
            found.update(table[c] for c in np.unique(cols.items).tolist())
        else:
            for op in self._sends:
                found.add(op.item)
        return found

    def processors(self) -> set[int]:
        procs = set(self.initial)
        if self._sends is None:
            cols = self._columns
            procs.update(np.unique(cols.srcs).tolist())
            procs.update(np.unique(cols.dsts).tolist())
        else:
            for op in self._sends:
                procs.add(op.src)
                procs.add(op.dst)
        return procs

    def item_creation_time(self, item: Item) -> int:
        return self.source_items.get(item, 0)

    def lint(self) -> "LintReport":
        """Run the static rule sweep (:func:`repro.analyze.lint_schedule`).

        Pure analysis over the cached column view — no simulation, and
        array-backed schedules are not materialized.
        """
        from repro.analyze import lint_schedule

        return lint_schedule(self)

    # -- protocol --------------------------------------------------------

    def __len__(self) -> int:
        return self.num_sends

    def __iter__(self) -> Iterator[SendOp]:
        return iter(self.sorted_sends())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return (
            self.params == other.params
            and self.machine == other.machine
            and self.sends == other.sends
            and self.initial == other.initial
            and self.computes == other.computes
            and self.source_items == other.source_items
        )

    # mutable container, like the previous dataclass
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        backing = "arrays" if self._sends is None else "objects"
        return (
            f"Schedule(params={self.params!r}, sends=<{self.num_sends} ops, "
            f"{backing}>, initial={len(self.initial)} procs, "
            f"computes={len(self.computes)}, "
            f"source_items={len(self.source_items)})"
        )
