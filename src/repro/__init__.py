"""logp-collectives: optimal broadcast and summation in the LogP model.

A faithful, machine-checked reproduction of *Karp, Sahay, Santos,
Schauser — "Optimal Broadcast and Summation in the LogP Model"*
(SPAA 1993): the universal optimal broadcast tree, k-item and continuous
broadcast with block-cyclic schedules, all-to-all and combining
broadcast, and optimal summation — plus a cycle-accurate LogP simulator
that validates every schedule the library produces.

Quickstart::

    from repro import plan, replay

    schedule = plan("broadcast", P=8, L=6, o=2, g=4)
    trace = replay(schedule)           # raises if any LogP rule is broken
    print(max(op.arrival(schedule.params) for op in schedule.sends))  # B(P) = 24

:func:`plan` resolves any registered collective by name (``broadcast``,
``kitem``, ``continuous``, ``all-to-all``, ``summation``, ``allreduce``,
``reduction``) through the declarative registry in
:mod:`repro.registry`; the per-collective builder functions remain
available for direct use.
"""

from repro.core.all_to_all import (
    all_to_all_lower_bound,
    all_to_all_personalized_schedule,
    all_to_all_schedule,
    k_item_all_to_all_lower_bound,
    k_item_all_to_all_schedule,
)
from repro.core.combining import (
    CombiningRun,
    combining_time,
    reduction_schedule,
    simulate_combining,
)
from repro.core.fib import (
    broadcast_time,
    broadcast_time_postal,
    fib,
    fib_sequence,
    k_star,
    kitem_lower_bound,
    reachable,
    reachable_postal,
    single_sending_lower_bound,
)
from repro.core.kitem.bounds import continuous_based_time, kitem_upper_bound
from repro.core.kitem.buffered import BufferedSchedule, buffered_schedule
from repro.core.kitem.single_sending import (
    continuous_based_schedule,
    greedy_single_sending_schedule,
    single_sending_schedule,
)
from repro.core.continuous.assignment import (
    Block,
    BlockCyclicAssignment,
    find_base_cases,
    solve,
    solve_instance,
)
from repro.core.continuous.relative import Instance, instance_for, step_multiset
from repro.core.continuous.schedule import (
    continuous_delay_lower_bound,
    expand,
    expand_assignment,
)
from repro.core.single_item import (
    optimal_broadcast_schedule,
    optimal_broadcast_time,
    schedule_from_tree,
)
from repro.core.summation.capacity import (
    min_summation_time,
    operand_distribution,
    summation_capacity,
    summation_tree,
)
from repro.core.summation.schedule import (
    SummationSchedule,
    summation_schedule,
    verify_summation,
)
from repro.core.tree import BroadcastTree, TreeNode, optimal_tree, tree_for_time
from repro.params import LogPParams, postal
from repro.passes import PassManager, SchedulePass, pass_names, run_pipeline
from repro.registry import CollectiveSpec, get_spec, plan
from repro.schedule.ops import ComputeOp, Schedule, SendOp
from repro.sim.machine import Machine, replay
from repro.sim.validate import assert_valid, violations

__version__ = "1.0.0"

__all__ = [
    # machine model
    "LogPParams",
    "postal",
    # collective registry
    "plan",
    "get_spec",
    "CollectiveSpec",
    # fibonacci machinery
    "fib",
    "fib_sequence",
    "reachable",
    "reachable_postal",
    "broadcast_time",
    "broadcast_time_postal",
    "k_star",
    # schedule IR + simulator
    "Schedule",
    "SendOp",
    "ComputeOp",
    "Machine",
    "replay",
    "assert_valid",
    "violations",
    # trees
    "BroadcastTree",
    "TreeNode",
    "optimal_tree",
    "tree_for_time",
    # single-item broadcast
    "optimal_broadcast_schedule",
    "optimal_broadcast_time",
    "schedule_from_tree",
    # k-item broadcast
    "kitem_lower_bound",
    "kitem_upper_bound",
    "single_sending_lower_bound",
    "continuous_based_time",
    "single_sending_schedule",
    "continuous_based_schedule",
    "greedy_single_sending_schedule",
    "buffered_schedule",
    "BufferedSchedule",
    # continuous broadcast
    "Instance",
    "instance_for",
    "step_multiset",
    "Block",
    "BlockCyclicAssignment",
    "solve",
    "solve_instance",
    "find_base_cases",
    "expand",
    "expand_assignment",
    "continuous_delay_lower_bound",
    # all-to-all
    "all_to_all_schedule",
    "all_to_all_personalized_schedule",
    "all_to_all_lower_bound",
    "k_item_all_to_all_schedule",
    "k_item_all_to_all_lower_bound",
    # pass framework
    "SchedulePass",
    "PassManager",
    "run_pipeline",
    "pass_names",
    # combining / reduction
    "simulate_combining",
    "combining_time",
    "reduction_schedule",
    "CombiningRun",
    # summation
    "summation_tree",
    "summation_capacity",
    "min_summation_time",
    "operand_distribution",
    "summation_schedule",
    "verify_summation",
    "SummationSchedule",
]
