"""All-to-all broadcast and personalized communication (Section 4.1).

Each of ``P`` processors holds a data item that must reach every other
processor.  Since a processor must receive ``P - 1`` items, the first
arriving no earlier than ``L + 2o``, the time is at least
``L + 2o + (P - 2) g``.  The paper's matching schedule: processor ``i``
sends its item to ``i+1, i+2, ..., i+P-1 (mod P)`` at times
``0, g, ..., (P-2) g`` — every processor then receives exactly one
message every ``g`` cycles starting at ``L + 2o``.

The same schedule is optimal for all-to-all *personalized* communication
(distinct item per (source, destination) pair) and, repeated ``k`` times,
for the k-item variant with lower bound ``L + 2o + (k(P-1) - 1) g``.
Any per-processor permutations such that no processor is the target of
two messages at the same time work equally well;
:func:`all_to_all_schedule` accepts an optional list of permutations and
validates the no-collision property.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.params import LogPParams
from repro.schedule.columnar import ItemTable
from repro.schedule.ops import Schedule

__all__ = [
    "all_to_all_lower_bound",
    "all_to_all_time",
    "interleaving_gap",
    "is_tight",
    "all_to_all_schedule",
    "all_to_all_personalized_schedule",
    "k_item_all_to_all_lower_bound",
    "k_item_all_to_all_schedule",
]


def all_to_all_lower_bound(params: LogPParams) -> int:
    """``L + 2o + (P-2) g``: minimum time for P-way all-to-all broadcast."""
    if params.P < 2:
        return 0
    return params.send_cost + (params.P - 2) * params.g


def interleaving_gap(params: LogPParams) -> int:
    """The send spacing the cyclic schedule actually uses.

    With ``o = 0`` (the paper's analysis setting) the spacing is ``g`` and
    the lower bound is met exactly.  With ``o > 0`` the strict synchronous
    model additionally requires each processor's send overheads and its
    incoming receive overheads to interleave: spacing ``g'`` works iff
    ``o <= (o + L) mod g' <= g' - o``.  We return the smallest feasible
    ``g' >= g`` (equal to ``g`` whenever the machine's parameters already
    interleave).
    """
    if params.o == 0:
        return params.g
    gp = max(params.g, 2 * params.o)
    while True:
        phase = (params.o + params.L) % gp
        if params.o <= phase <= gp - params.o:
            return gp
        gp += 1


def is_tight(params: LogPParams) -> bool:
    """True iff the cyclic schedule meets the lower bound exactly."""
    return interleaving_gap(params) == params.g


def all_to_all_time(params: LogPParams) -> int:
    """Completion time of the cyclic schedule (== lower bound when tight)."""
    if params.P < 2:
        return 0
    return params.send_cost + (params.P - 2) * interleaving_gap(params)


def k_item_all_to_all_lower_bound(params: LogPParams, k: int) -> int:
    """``L + 2o + (k(P-1) - 1) g`` for ``k`` items per processor."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if params.P < 2:
        return 0
    return params.send_cost + (k * (params.P - 1) - 1) * params.g


def _default_orders(P: int) -> list[list[int]]:
    return [[(i + d) % P for d in range(1, P)] for i in range(P)]


def _check_orders(P: int, orders: Sequence[Sequence[int]]) -> None:
    if len(orders) != P:
        raise ValueError(f"need one permutation per processor, got {len(orders)}")
    for i, order in enumerate(orders):
        expected = set(range(P)) - {i}
        if set(order) != expected or len(order) != P - 1:
            raise ValueError(
                f"processor {i}'s order must be a permutation of the other "
                f"{P - 1} processors"
            )
    for slot in range(P - 1):
        targets = [order[slot] for order in orders]
        if len(set(targets)) != P:
            raise ValueError(
                f"two processors target the same destination in round {slot}"
            )


def _cyclic_grid(P: int, gp: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(srcs, slots, times)`` for one round of the cyclic schedule.

    Send order matches the object-path loops: source-major, then slot.
    """
    srcs = np.repeat(np.arange(P, dtype=np.int64), P - 1)
    slots = np.tile(np.arange(P - 1, dtype=np.int64), P)
    return srcs, slots, slots * gp


def all_to_all_schedule(
    params: LogPParams,
    orders: Sequence[Sequence[int]] | None = None,
    *,
    backend: str = "columnar",
) -> Schedule:
    """Optimal all-to-all broadcast: item ``("a2a", i)`` starts at proc ``i``.

    ``orders[i]`` is the destination sequence of processor ``i``; the
    default is the paper's cyclic ``i+1, ..., i+P-1 (mod P)``.  Custom
    orders are validated for the round-collision-freedom criterion the
    paper states.

    ``backend="columnar"`` (the default) builds the array-backed schedule
    with numpy broadcasting — no per-send Python loop; ``"objects"`` is
    the original loop, kept as the property-tested oracle.
    """
    P = params.P
    if P < 2:
        return Schedule(params=params, initial={0: {("a2a", 0)}})
    if orders is not None:
        _check_orders(P, orders)
    gp = interleaving_gap(params)
    initial = {i: {("a2a", i)} for i in range(P)}
    if backend == "objects":
        if orders is None:
            orders = _default_orders(P)
        schedule = Schedule(params=params, initial=initial)
        for i in range(P):
            for slot, dst in enumerate(orders[i]):
                schedule.add(time=slot * gp, src=i, dst=dst, item=("a2a", i))
        return schedule
    if backend != "columnar":
        raise ValueError(f"unknown backend {backend!r}")
    srcs, slots, times = _cyclic_grid(P, gp)
    if orders is None:
        dsts = (srcs + 1 + slots) % P
    else:
        dsts = np.asarray(orders, dtype=np.int64).reshape(-1)
    return Schedule.from_arrays(
        params,
        times,
        srcs,
        dsts,
        item_codes=srcs,
        item_table=ItemTable(("a2a", i) for i in range(P)),
        initial=initial,
    )


def all_to_all_personalized_schedule(
    params: LogPParams, *, backend: str = "columnar"
) -> Schedule:
    """All-to-all personalized communication: item ``("p2p", i, j)`` goes
    from ``i`` to ``j`` only.  Same timing as the broadcast schedule."""
    P = params.P
    initial = {
        i: {("p2p", i, j) for j in range(P) if j != i} for i in range(P)
    }
    gp = interleaving_gap(params)
    if backend == "objects":
        schedule = Schedule(params=params, initial=initial)
        for i in range(P):
            for slot in range(P - 1):
                dst = (i + 1 + slot) % P
                schedule.add(
                    time=slot * gp, src=i, dst=dst, item=("p2p", i, dst)
                )
        return schedule
    if backend != "columnar":
        raise ValueError(f"unknown backend {backend!r}")
    if P < 2:
        return Schedule(params=params, initial=initial or {0: set()})
    srcs, slots, times = _cyclic_grid(P, gp)
    dsts = (srcs + 1 + slots) % P
    # every send carries a distinct item, in storage order
    table = ItemTable(
        ("p2p", i, j) for i, j in zip(srcs.tolist(), dsts.tolist())
    )
    return Schedule.from_arrays(
        params,
        times,
        srcs,
        dsts,
        item_codes=np.arange(len(times), dtype=np.int64),
        item_table=table,
        initial=initial,
    )


def k_item_all_to_all_schedule(
    params: LogPParams, k: int, *, backend: str = "columnar"
) -> Schedule:
    """``k`` repetitions of the cyclic schedule: optimal k-item all-to-all."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    P = params.P
    initial = {i: {("a2a", i, copy) for copy in range(k)} for i in range(P)}
    if P < 2:
        return Schedule(params=params, initial=initial)
    gp = interleaving_gap(params)
    if backend == "objects":
        schedule = Schedule(params=params, initial=initial)
        for copy in range(k):
            base = copy * (P - 1) * gp
            for i in range(P):
                for slot in range(P - 1):
                    dst = (i + 1 + slot) % P
                    schedule.add(
                        time=base + slot * gp,
                        src=i,
                        dst=dst,
                        item=("a2a", i, copy),
                    )
        return schedule
    if backend != "columnar":
        raise ValueError(f"unknown backend {backend!r}")
    round_sends = P * (P - 1)
    copies = np.repeat(np.arange(k, dtype=np.int64), round_sends)
    srcs1, slots1, times1 = _cyclic_grid(P, gp)
    srcs = np.tile(srcs1, k)
    slots = np.tile(slots1, k)
    times = copies * ((P - 1) * gp) + np.tile(times1, k)
    dsts = (srcs + 1 + slots) % P
    # interning order (first occurrence: copy-major, then source) gives
    # item ("a2a", i, copy) the code copy * P + i
    table = ItemTable(
        ("a2a", i, copy) for copy in range(k) for i in range(P)
    )
    return Schedule.from_arrays(
        params,
        times,
        srcs,
        dsts,
        item_codes=copies * P + srcs,
        item_table=table,
        initial=initial,
    )
