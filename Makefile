# Convenience targets for logp-collectives.

PY ?= python3

.PHONY: install test lint check run-smoke bench figures sweeps examples all clean

install:
	$(PY) -m pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

# Static gates: AST hot-loop + dispatch check, then a lint smoke over
# every builder the collective registry knows (the list is generated,
# not hand-maintained); ruff and mypy run when installed, else are
# skipped loudly — CI installs both, so nothing is skipped there.
lint:
	$(PY) tools/lint_hot_loops.py
	@for b in $$(PYTHONPATH=src $(PY) -m repro.cli builders --names); do \
		echo "== lint --builder $$b"; \
		PYTHONPATH=src $(PY) -m repro.cli lint --builder $$b || exit 1; \
	done
	@for f in tests/data/lint_corpus/*.json; do \
		case $$f in */expected.json) continue;; esac; \
		echo "== opt canonicalize $$f"; \
		PYTHONPATH=src $(PY) -m repro.cli opt $$f --pipeline canonicalize \
			--verify-each --fail-on never --out /tmp/repro_opt_out.json || exit 1; \
		cmp /tmp/repro_opt_out.json $$f || exit 1; \
	done
	@if $(PY) -m ruff --version >/dev/null 2>&1; then \
		$(PY) -m ruff check src tests tools || exit 1; \
	else \
		echo "SKIP: ruff not installed (CI runs it)"; \
	fi
	@if $(PY) -m mypy --version >/dev/null 2>&1; then \
		$(PY) -m mypy || exit 1; \
	else \
		echo "SKIP: mypy not installed (CI runs it)"; \
	fi

# Codebase checkers (REPRO001-REPRO008) over the whole package; fails
# on any warning.  Skips loudly when the package sources are absent
# (e.g. a docs-only checkout) — CI always runs it for real.
check:
	@if [ -d src/repro ]; then \
		PYTHONPATH=src $(PY) -m repro.cli check src/repro || exit 1; \
	else \
		echo "SKIP: src/repro not present"; \
	fi

# Real-transport execution smoke (S37): every registered collective is
# lowered to per-rank programs, executed on the inproc and mp
# transports, and byte-verified against the simulator's delivered
# multiset; then the P=256 broadcast on both transports.
run-smoke:
	@for t in inproc mp; do \
		for b in $$(PYTHONPATH=src $(PY) -m repro.cli builders --names); do \
			echo "== run --builder $$b --transport $$t"; \
			PYTHONPATH=src $(PY) -m repro.cli run --builder $$b \
				--transport $$t --verify || exit 1; \
		done; \
	done
	@for t in inproc mp; do \
		echo "== run --builder bcast -P 256 --transport $$t"; \
		PYTHONPATH=src $(PY) -m repro.cli run --builder bcast \
			-P 256 -L 4 --o 1 --g 2 --transport $$t --verify || exit 1; \
	done

bench:
	PYTHONPATH=src $(PY) -m repro.cli bench --out BENCH.json
	PYTHONPATH=src $(PY) -m pytest -m perf benchmarks/test_perf_regression.py

bench-micro:
	$(PY) -m pytest benchmarks/ --benchmark-only

figures:
	$(PY) -m repro.cli figures

sweeps:
	$(PY) -m repro.cli sweeps

# Every example is a self-checking script: each asserts its headline
# claims and exits non-zero on failure, so this target doubles as a
# smoke suite (CI runs it in the `examples` job).
examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; PYTHONPATH=src $(PY) $$ex || exit 1; \
	done

all: test bench

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .hypothesis src/*.egg-info
