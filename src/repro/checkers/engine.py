"""The check engine: expand paths, parse once, run every applicable rule.

Execution model (mirrors :mod:`repro.analyze.engine` one tier up):

1. ``--select``/``--ignore`` spellings resolve against the registry
   up front — unknown rules are a usage error, not a silent no-op.
2. Each file is read and parsed exactly once into a
   :class:`~repro.checkers.context.FileContext`; every rule whose
   profile predicate matches walks that same tree.
3. Raw :class:`~repro.checkers.registry.Finding` records are stamped
   with rule id, severity and display path, then filtered through the
   file's same-line suppressions.  A suppression that names a rule
   which ran on the file but matched nothing becomes a
   :data:`~repro.checkers.diagnostics.UNUSED_SUPPRESSION` warning —
   stale suppressions are how regressions sneak back in.

Diagnostics are sorted by ``(path, line, rule)`` so output is
byte-stable across dict-ordering and registration-order changes.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, Sequence

from repro.checkers.context import FileContext
from repro.checkers.diagnostics import (
    UNUSED_SUPPRESSION,
    CheckDiagnostic,
    CheckReport,
    Severity,
)
from repro.checkers.registry import Checker, resolve_checkers

import repro.checkers.rules  # noqa: F401  (registers REPRO001-REPRO008)

__all__ = ["expand_paths", "check_context", "check_paths"]


def expand_paths(paths: Sequence[str | Path]) -> list[Path]:
    """Explicit files plus every ``*.py`` under listed directories.

    Directories expand via sorted ``rglob`` so run order (and therefore
    rendered output) is independent of filesystem enumeration order.
    Missing paths raise ``ValueError`` — matching the old hot-loop
    linter, a misspelled target is a usage error, never a clean pass.
    """
    out: list[Path] = []
    missing: list[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            out.append(path)
        else:
            missing.append(str(raw))
    if missing:
        raise ValueError(f"missing files: {', '.join(missing)}")
    seen: set[str] = set()
    unique: list[Path] = []
    for path in out:
        key = path.resolve().as_posix()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def check_context(
    ctx: FileContext, checkers: Sequence[Checker]
) -> tuple[list[CheckDiagnostic], list[str]]:
    """Run ``checkers`` over one parsed file.

    Returns ``(diagnostics, ran)`` where ``ran`` lists the rule ids
    whose profile predicate matched this file (whether or not they
    found anything) — the denominator the unused-suppression pass and
    the report's ``rules_run`` bookkeeping both need.
    """
    applicable = [c for c in checkers if c.applies(ctx.profiles)]
    ran = [c.id for c in applicable]
    diagnostics: list[CheckDiagnostic] = []
    used: set[tuple[int, str]] = set()
    for checker in applicable:
        for finding in checker.run(ctx):
            if checker.id in ctx.suppressions.get(finding.line, set()):
                used.add((finding.line, checker.id))
                continue
            diagnostics.append(
                CheckDiagnostic(
                    rule=checker.id,
                    severity=checker.severity,
                    path=ctx.path,
                    line=finding.line,
                    message=finding.message,
                    fixit=finding.fixit,
                )
            )
    ran_ids = set(ran)
    for line, rules in sorted(ctx.suppressions.items()):
        for rule in sorted(rules):
            if rule not in ran_ids or (line, rule) in used:
                continue
            diagnostics.append(
                CheckDiagnostic(
                    rule=UNUSED_SUPPRESSION,
                    severity=Severity.WARNING,
                    path=ctx.path,
                    line=line,
                    message=(
                        f"unused suppression: {rule} ran on this file but "
                        "matched nothing on this line (remove the stale "
                        "`# repro: ignore[...]`)"
                    ),
                )
            )
    return diagnostics, ran


def check_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    display_root: str | Path | None = None,
) -> CheckReport:
    """Check files/directories and aggregate one :class:`CheckReport`.

    ``display_root`` rewrites diagnostic paths relative to a root (the
    corpus tests pin output rendered relative to the corpus directory,
    so the pins survive checkout relocation).  Unknown rules, missing
    paths and unparseable files raise ``ValueError`` with a one-line
    message the CLI turns into a usage error.
    """
    checkers = resolve_checkers(select, ignore)
    files = expand_paths(paths)
    root = Path(display_root).resolve() if display_root is not None else None
    started = time.perf_counter()
    diagnostics: list[CheckDiagnostic] = []
    rules_run: list[str] = []
    seen_rules: set[str] = set()
    for path in files:
        display: str | None = None
        if root is not None:
            try:
                display = path.resolve().relative_to(root).as_posix()
            except ValueError:
                display = path.as_posix()
        ctx = FileContext.load(path, display=display)
        file_diags, ran = check_context(ctx, checkers)
        diagnostics.extend(file_diags)
        for rule in ran:
            if rule not in seen_rules:
                seen_rules.add(rule)
                rules_run.append(rule)
    diagnostics.sort(key=lambda d: (d.path, d.line, d.rule))
    totals: dict[str, int] = {}
    for diagnostic in diagnostics:
        totals[diagnostic.rule] = totals.get(diagnostic.rule, 0) + 1
    return CheckReport(
        diagnostics=diagnostics,
        rules_run=sorted(rules_run),
        rule_totals=totals,
        files_checked=len(files),
        elapsed_s=time.perf_counter() - started,
    )
